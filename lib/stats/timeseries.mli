module Time = Skyloft_sim.Time

(** Step-function timeseries: (time, value) samples recorded in
    nondecreasing time order, holding each value until the next sample.

    Used for slowly-changing runtime state — per-application core counts
    from the allocator, queue depths — where a histogram would lose the
    time dimension.  Bounded: the oldest samples are dropped once
    [capacity] is exceeded. *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 65,536) most recent samples. *)

val record : t -> at:Time.t -> int -> unit
(** Append a sample.  [at] must be >= the previous sample's time.
    Consecutive samples with the same value are collapsed. *)

val length : t -> int
val dropped : t -> int
val last : t -> (Time.t * int) option

val to_list : t -> (Time.t * int) list
(** Chronological (oldest first). *)

val value_at : t -> Time.t -> int option
(** Step-function lookup: the value of the last sample at or before the
    given time; [None] before the first sample. *)

val mean : t -> until:Time.t -> float
(** Time-weighted mean of the step function from the first sample to
    [until].  [0.0] when empty, so an unused series renders as zero in
    reports instead of propagating [nan] through every aggregate. *)

val integrate : t -> until:Time.t -> float
(** Time-weighted sum of the step function from the first sample to
    [until]: [sum (value * dt)] over the covered span, in value·ns.
    Dividing by a duration gives e.g. mean granted cores (the utilization
    pass in [lib/obs] builds core-seconds this way).  [0.0] when empty. *)

val min_value : t -> int
val max_value : t -> int
(** Extremes over the retained samples; 0 when empty. *)
