(* Co-scheduling a latency-critical service with a batch application —
   the paper's multi-application story (§3.3, Figure 7b/7c).

   A centralized Skyloft dispatcher serves a bursty LC request stream; a
   batch application soaks up the idle cores.  The core allocator
   (Shenango-style Delay policy: reclaim when the oldest LC request has
   queued too long) moves cores between the two applications, preempting
   batch workers with user IPIs — the Single Binding Rule is upheld by the
   kernel module, and every move pays the §5.4 inter-app switch cost.

     dune exec examples/colocate.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Centralized = Skyloft.Centralized
module App = Skyloft.App
module Summary = Skyloft_stats.Summary
module Dist = Skyloft_sim.Dist
module Loadgen = Skyloft_net.Loadgen
module Packet = Skyloft_net.Packet
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy

let () =
  let engine = Engine.create ~seed:11 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3; 4 ]
      ~quantum:(Time.us 30)
      ~alloc:
        {
          (Allocator.default_config ()) with
          Allocator.policy = Alloc_policy.delay ~threshold:(Time.us 10) ();
        }
      (Skyloft_policies.Shinjuku.create ())
  in
  let lc = Centralized.create_app rt ~name:"lc-service" in
  let batch = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt batch ~chunk:(Time.us 50) ~workers:4;

  (* A bursty LC stream: 2ms of high load alternating with 2ms of quiet. *)
  let rng = Engine.split_rng engine in
  let service = Dist.Exponential { mean = Time.us 20 } in
  let duration = Time.ms 100 in
  let rec burst t =
    if t < duration then begin
      Loadgen.poisson engine ~rng ~rate_rps:150_000.0 ~service ~start:t
        ~duration:(Time.ms 2) (fun (pkt : Packet.t) ->
          ignore
            (Centralized.submit rt lc ~name:"req" ~service:pkt.service
               (Coro.compute_then_exit pkt.service)));
      burst (t + Time.ms 4)
    end
  in
  burst 0;
  Engine.run ~until:(duration + Time.ms 10) engine;

  let total = 4 * (duration + Time.ms 10) in
  Printf.printf "LC requests served:  %d (p99 latency %s)\n"
    (Summary.requests lc.App.summary)
    (Format.asprintf "%a" Time.pp (Summary.latency_p lc.App.summary 99.0));
  Printf.printf "LC CPU share:        %.1f%%\n" (100.0 *. App.cpu_share lc ~total_ns:total);
  Printf.printf "batch CPU share:     %.1f%%  (reclaimed %d times by user IPIs)\n"
    (100.0 *. App.cpu_share batch ~total_ns:total)
    (Centralized.be_preemptions rt);
  (match Centralized.allocator rt with
  | Some alloc ->
      Printf.printf
        "core allocator:      %s policy, %d grants / %d reclaims / %d yields\n"
        (Allocator.policy_name alloc)
        (Allocator.grants alloc) (Allocator.reclaims alloc)
        (Allocator.yields alloc);
      Printf.printf "                     %s of inter-app switch cost charged\n"
        (Format.asprintf "%a" Time.pp (Allocator.charged_ns alloc))
  | None -> ());
  Printf.printf
    "=> the batch app runs in the LC service's idle valleys and is evicted\n";
  Printf.printf "   within ~10us of queueing delay when a burst arrives (Figure 7c)\n"
