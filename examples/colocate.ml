(* Co-scheduling a latency-critical service with a batch application —
   the paper's multi-application story (§3.3, Figure 7b/7c).

   A Skyloft runtime serves a bursty LC request stream; a batch
   application soaks up the idle cores.  The core allocator
   (Shenango-style Delay policy: reclaim when the oldest LC request has
   queued too long) moves cores between the two applications, preempting
   batch workers with user IPIs — the Single Binding Rule is upheld by the
   kernel module, and every move pays the §5.4 inter-app switch cost.

   The same colocation runs twice: once under the centralized dispatcher
   and once under the hybrid runtime.  The BE workers, the allocator and
   the accounting live in the shared Runtime_core substrate, so the
   second run differs only in the dispatch mechanism on top.

     dune exec examples/colocate.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Centralized = Skyloft.Centralized
module Hybrid = Skyloft.Hybrid
module App = Skyloft.App
module Summary = Skyloft_stats.Summary
module Dist = Skyloft_sim.Dist
module Loadgen = Skyloft_net.Loadgen
module Packet = Skyloft_net.Packet
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy

(* One runtime's view of the colocation: how to submit, and where the
   BE-preemption and allocator counters live. *)
type colo = {
  lc : App.t;
  batch : App.t;
  submit : name:string -> service:Time.t -> unit;
  be_preemptions : unit -> int;
  allocator : unit -> Allocator.t option;
  extra : unit -> string;
}

let duration = Time.ms 100

let alloc_cfg () =
  {
    (Allocator.default_config ()) with
    Allocator.policy = Alloc_policy.delay ~threshold:(Time.us 10) ();
  }

let make_centralized machine kmod =
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3; 4 ]
      ~quantum:(Time.us 30) ~alloc:(alloc_cfg ())
      (Skyloft_policies.Shinjuku.create ())
  in
  let lc = Centralized.create_app rt ~name:"lc-service" in
  let batch = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt batch ~chunk:(Time.us 50) ~workers:4;
  {
    lc;
    batch;
    submit =
      (fun ~name ~service ->
        ignore
          (Centralized.submit rt lc ~name ~service
             (Coro.compute_then_exit service)));
    be_preemptions = (fun () -> Centralized.be_preemptions rt);
    allocator = (fun () -> Centralized.allocator rt);
    extra = (fun () -> "");
  }

let make_hybrid machine kmod =
  let rt =
    Hybrid.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3; 4 ]
      ~quantum:(Time.us 30) ~alloc:(alloc_cfg ())
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Hybrid.create_app rt ~name:"lc-service" in
  let batch = Hybrid.create_app rt ~name:"batch" in
  Hybrid.attach_be_app rt batch ~chunk:(Time.us 50) ~workers:4;
  {
    lc;
    batch;
    submit =
      (fun ~name ~service ->
        ignore
          (Hybrid.submit rt lc ~name ~service (Coro.compute_then_exit service)));
    be_preemptions = (fun () -> Hybrid.be_preemptions rt);
    allocator = (fun () -> Hybrid.allocator rt);
    extra =
      (fun () -> Printf.sprintf ", %d mode switches" (Hybrid.mode_switches rt));
  }

let run_colocation name make =
  let engine = Engine.create ~seed:11 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let c = make machine kmod in

  (* A bursty LC stream: 2ms of high load alternating with 2ms of quiet. *)
  let rng = Engine.split_rng engine in
  let service = Dist.Exponential { mean = Time.us 20 } in
  let rec burst t =
    if t < duration then begin
      Loadgen.poisson engine ~rng ~rate_rps:150_000.0 ~service ~start:t
        ~duration:(Time.ms 2) (fun (pkt : Packet.t) ->
          c.submit ~name:"req" ~service:pkt.service);
      burst (t + Time.ms 4)
    end
  in
  burst 0;
  Engine.run ~until:(duration + Time.ms 10) engine;

  let total = 4 * (duration + Time.ms 10) in
  Printf.printf "---- %s ----\n" name;
  Printf.printf "LC requests served:  %d (p99 latency %s)\n"
    (Summary.requests c.lc.App.summary)
    (Format.asprintf "%a" Time.pp (Summary.latency_p c.lc.App.summary 99.0));
  Printf.printf "LC CPU share:        %.1f%%\n"
    (100.0 *. App.cpu_share c.lc ~total_ns:total);
  Printf.printf "batch CPU share:     %.1f%%  (reclaimed %d times by user IPIs%s)\n"
    (100.0 *. App.cpu_share c.batch ~total_ns:total)
    (c.be_preemptions ()) (c.extra ());
  (match c.allocator () with
  | Some alloc ->
      Printf.printf
        "core allocator:      %s policy, %d grants / %d reclaims / %d yields\n"
        (Allocator.policy_name alloc)
        (Allocator.grants alloc) (Allocator.reclaims alloc)
        (Allocator.yields alloc);
      Printf.printf "                     %s of inter-app switch cost charged\n"
        (Format.asprintf "%a" Time.pp (Allocator.charged_ns alloc))
  | None -> ())

let () =
  run_colocation "centralized dispatcher" make_centralized;
  run_colocation "hybrid runtime" make_hybrid;
  Printf.printf
    "=> the batch app runs in the LC service's idle valleys and is evicted\n";
  Printf.printf
    "   within ~10us of queueing delay when a burst arrives (Figure 7c);\n";
  Printf.printf
    "   both runtimes drive the same allocator through the shared substrate\n"
