(* Tracing the scheduler: run a mixed workload with two applications under
   preemptive work stealing, record every run span and scheduling event,
   and export a Chrome trace (open chrome://tracing or https://ui.perfetto.dev
   and load the JSON).  A second trace captures the hybrid runtime under a
   burst, where the mode handovers show up as "mode-switch" instants.

     dune exec examples/trace_scheduling.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Trace = Skyloft_stats.Trace
module Batch = Skyloft_apps.Batch

let () =
  let engine = Engine.create ~seed:21 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1 ] ~timer_hz:100_000
      (Skyloft_policies.Work_stealing.create ~quantum:(Time.us 20) ())
  in
  let trace = Trace.create () in
  Percpu.set_trace rt trace;

  (* Two applications sharing the cores: an LC service and a batch app. *)
  let lc = Percpu.create_app rt ~name:"service" in
  let batch = Percpu.create_app rt ~name:"batch" in
  Batch.spawn_workers rt batch ~workers:2 ~chunk:(Time.us 40);
  for i = 1 to 20 do
    ignore
      (Engine.at engine (Time.us (37 * i)) (fun () ->
           ignore
             (Percpu.spawn rt lc
                ~name:(Printf.sprintf "req-%d" i)
                ~service:(Time.us 15)
                (Coro.compute_then_exit (Time.us 15)))))
  done;
  Engine.run ~until:(Time.ms 1) engine;

  let path = Filename.concat (Filename.get_temp_dir_name ()) "skyloft_trace.json" in
  Trace.write_chrome_json trace ~path;
  Printf.printf "traced %d events (%d dropped) over %s of virtual time\n"
    (Trace.events trace) (Trace.dropped trace)
    (Format.asprintf "%a" Time.pp (Engine.now engine));
  Printf.printf "requests served: %d   preemptions: %d   app switches: %d\n"
    lc.App.completed (Percpu.preemptions rt) (Percpu.app_switches rt);
  Printf.printf "wrote %s — load it in chrome://tracing or ui.perfetto.dev\n" path;
  Printf.printf
    "=> rows are cores; spans show req-* slotting between batch chunks via\n";
  Printf.printf "   20us quantum preemption and cross-app kthread switches\n";

  (* Second trace: the hybrid runtime under a burst.  The monitor's mode
     handovers — dispatcher to per-core timers and back — land in the
     trace as "mode-switch" instants on the dispatcher core. *)
  let engine = Engine.create ~seed:21 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Skyloft.Hybrid.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3 ]
      ~quantum:(Time.us 20)
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let trace = Trace.create () in
  Skyloft.Hybrid.set_trace rt trace;
  let lc = Skyloft.Hybrid.create_app rt ~name:"service" in
  for i = 1 to 20 do
    ignore
      (Engine.at engine (Time.us (37 * i)) (fun () ->
           ignore
             (Skyloft.Hybrid.submit rt lc
                ~name:(Printf.sprintf "req-%d" i)
                ~service:(Time.us 15)
                (Coro.compute_then_exit (Time.us 15)))))
  done;
  ignore
    (Engine.at engine (Time.us 300) (fun () ->
         for i = 1 to 16 do
           ignore
             (Skyloft.Hybrid.submit rt lc
                ~name:(Printf.sprintf "burst-%d" i)
                ~service:(Time.us 30)
                (Coro.compute_then_exit (Time.us 30)))
         done));
  Engine.run ~until:(Time.ms 1) engine;
  let mode_instants =
    Trace.fold trace
      (fun acc ev ->
        match ev with
        | Trace.Instant { kind = Trace.Mode_switch; _ } -> acc + 1
        | _ -> acc)
      0
  in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "skyloft_hybrid_trace.json" in
  Trace.write_chrome_json trace ~path;
  Printf.printf "\nhybrid: %d requests, %d mode switches (%d instants in the trace)\n"
    lc.App.completed
    (Skyloft.Hybrid.mode_switches rt)
    mode_instants;
  Printf.printf "wrote %s\n" path;
  Printf.printf
    "=> find the mode-switch instants on core 0: dispatch spans before,\n";
  Printf.printf "   timer-tick preemption spans after, until the burst drains\n"
