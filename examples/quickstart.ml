(* Quickstart: build a simulated machine, start the Skyloft per-CPU runtime
   with the Round-Robin policy and user-space timer preemption, run a mixed
   workload, and look at what happened.  Part two runs a burst through the
   hybrid runtime and watches it switch dispatch modes under load.

     dune exec examples/quickstart.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Histogram = Skyloft_stats.Histogram

let () =
  (* 1. A machine: one socket, four isolated cores, virtual time. *)
  let engine = Engine.create ~seed:7 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in

  (* 2. The Skyloft runtime: per-CPU scheduling loops on all four cores,
     LAPIC timers delegated to user space at 100 kHz (the §3.2 trick),
     Round-Robin with a 50 us slice. *)
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1; 2; 3 ] ~timer_hz:100_000
      (Skyloft_policies.Rr.create ~slice:(Time.us 50) ())
  in
  let app = Percpu.create_app rt ~name:"quickstart" in

  (* 3. A workload: one CPU hog per core plus a burst of short requests.
     Preemption keeps the shorts from waiting behind the hogs. *)
  for i = 1 to 4 do
    ignore
      (Percpu.spawn rt app
         ~name:(Printf.sprintf "hog-%d" i)
         ~service:(Time.ms 2)
         (Coro.compute_then_exit (Time.ms 2)))
  done;
  let short_latencies = Histogram.create () in
  for i = 1 to 40 do
    let arrival = Time.us (100 * i) in
    ignore
      (Engine.at engine arrival (fun () ->
           ignore
             (Percpu.spawn rt app
                ~name:(Printf.sprintf "short-%d" i)
                ~service:(Time.us 10) ~record:false
                (Coro.Compute
                   ( Time.us 10,
                     fun () ->
                       Histogram.record short_latencies (Engine.now engine - arrival);
                       Coro.Exit )))))
  done;

  (* 4. Run the virtual clock. *)
  Engine.run ~until:(Time.ms 20) engine;

  Printf.printf "ran %d tasks on 4 cores in %s of virtual time\n"
    app.App.completed
    (Format.asprintf "%a" Time.pp (Engine.now engine));
  Printf.printf "timer ticks handled in user space: %d\n" (Percpu.timer_ticks rt);
  Printf.printf "preemptions: %d   task switches: %d\n" (Percpu.preemptions rt)
    (Percpu.task_switches rt);
  Printf.printf "short-request latency: p50=%s p99=%s (hogs are 2ms each!)\n"
    (Format.asprintf "%a" Time.pp (Histogram.percentile short_latencies 50.0))
    (Format.asprintf "%a" Time.pp (Histogram.percentile short_latencies 99.0));
  Printf.printf
    "=> without the 50us time slice every short would have waited ~2ms\n";

  (* 5. The hybrid runtime on a fresh machine: centralized dispatch while
     the shared queue is shallow (best low-load tail), per-CPU preemption
     timers once it deepens (no serial-dispatcher ceiling).  A quiet
     trickle keeps it in Central mode; a mid-run burst pushes the queue
     past the threshold and the monitor hands the cores over — then back
     once the burst drains. *)
  let engine = Engine.create ~seed:7 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Skyloft.Hybrid.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3 ]
      ~quantum:(Time.us 30)
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let app = Skyloft.Hybrid.create_app rt ~name:"quickstart-hybrid" in
  for i = 1 to 30 do
    ignore
      (Engine.at engine (Time.us (100 * i)) (fun () ->
           ignore
             (Skyloft.Hybrid.submit rt app
                ~name:(Printf.sprintf "trickle-%d" i)
                ~service:(Time.us 10)
                (Coro.compute_then_exit (Time.us 10)))))
  done;
  ignore
    (Engine.at engine (Time.ms 1) (fun () ->
         for i = 1 to 24 do
           ignore
             (Skyloft.Hybrid.submit rt app
                ~name:(Printf.sprintf "burst-%d" i)
                ~service:(Time.us 40)
                (Coro.compute_then_exit (Time.us 40)))
         done));
  Engine.run ~until:(Time.ms 5) engine;
  Printf.printf "\nhybrid runtime: %d requests, %d dispatcher assignments,\n"
    app.App.completed
    (Skyloft.Hybrid.dispatches rt);
  Printf.printf "%d timer ticks, %d mode switches (ends in %s mode)\n"
    (Skyloft.Hybrid.timer_ticks rt)
    (Skyloft.Hybrid.mode_switches rt)
    (match Skyloft.Hybrid.mode rt with
    | Skyloft.Hybrid.Central -> "central"
    | Skyloft.Hybrid.Percore -> "percore");
  Printf.printf
    "=> the burst crossed the depth threshold: per-core timers took over,\n";
  Printf.printf "   then the dispatcher got the cores back as the queue drained\n"
