(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5).

   Layout:
   - Bechamel microbenchmarks measure this repository's real code: the
     effects-based uthread operations (Table 7's Skyloft column) and the
     simulator's hot primitives.
   - Each figure/table section then runs the corresponding simulation
     experiment and prints measured-vs-paper tables (EXPERIMENTS.md records
     the comparison).

   SKYLOFT_BENCH=quick|default|full selects the per-point simulated
   duration (default: default). *)

open Bechamel
open Toolkit
module E = Skyloft_experiments
module U = Skyloft_uthread.Uthread

(* ---- Bechamel plumbing ------------------------------------------------- *)

let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
let instances = Instance.[ monotonic_clock ]

let run_bench tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  match Analyze.merge ols instances results with
  | results -> results

let estimate results name =
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> nan
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | None -> nan
      | Some ols_result -> (
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | Some [] | None -> nan))

(* ---- Table 7: real uthread operation costs ----------------------------- *)

(* Each staged function performs [ops_per_run] operations plus one
   Uthread.run setup; the per-operation cost is the slope divided by the
   batch size (the run overhead is amortised). *)
let ops_per_run = 1000

let bench_yield () =
  U.run (fun () ->
      let t =
        U.spawn (fun () ->
            for _ = 1 to ops_per_run do
              U.yield ()
            done)
      in
      U.join t)

let bench_spawn () =
  U.run (fun () ->
      for _ = 1 to ops_per_run do
        ignore (U.spawn (fun () -> ()))
      done)

let bench_mutex () =
  let m = U.Mutex.create () in
  U.run (fun () ->
      for _ = 1 to ops_per_run do
        U.Mutex.lock m;
        U.Mutex.unlock m
      done)

let bench_condvar () =
  let m = U.Mutex.create () and cv = U.Condvar.create () in
  U.run (fun () ->
      let waiter =
        U.spawn (fun () ->
            U.Mutex.lock m;
            for _ = 1 to ops_per_run do
              U.Condvar.wait cv m
            done;
            U.Mutex.unlock m)
      in
      for _ = 1 to ops_per_run do
        U.yield ();
        U.Condvar.signal cv
      done;
      U.join waiter)

let table7_tests =
  Test.make_grouped ~name:"table7"
    [
      Test.make ~name:"yield" (Staged.stage bench_yield);
      Test.make ~name:"spawn" (Staged.stage bench_spawn);
      Test.make ~name:"mutex" (Staged.stage bench_mutex);
      Test.make ~name:"condvar" (Staged.stage bench_condvar);
    ]

let print_table7_measured () =
  E.Report.section
    "Table 7 (measured): real effects-based uthread operations (Bechamel)";
  let results = run_bench table7_tests in
  let per_op name = estimate results (Printf.sprintf "table7/%s" name) /. float_of_int ops_per_run in
  let paper = [ ("yield", 37); ("spawn", 191); ("mutex", 27); ("condvar", 86) ] in
  E.Report.table
    ~header:[ "operation"; "measured ns/op (this host)"; "paper Skyloft ns" ]
    (List.map
       (fun (name, p) ->
         [ name; Printf.sprintf "%.0f" (per_op name); string_of_int p ])
       paper);
  E.Report.note "absolute values depend on this host's CPU and the OCaml runtime;";
  E.Report.note "the claim preserved is user-level ops at tens-to-hundreds of ns,";
  E.Report.note "orders of magnitude below pthread spawn (15,418 ns) and condvar (2,532 ns)"

(* ---- simulator primitive microbenchmarks ------------------------------- *)

let bench_eventq () =
  let module Eventq = Skyloft_sim.Eventq in
  let q = Eventq.create () in
  for i = 1 to 1000 do
    ignore (Eventq.schedule q ~at:i ())
  done;
  let rec drain () = match Eventq.pop q with Some _ -> drain () | None -> () in
  drain ()

let bench_engine_events () =
  let module Engine = Skyloft_sim.Engine in
  let engine = Engine.create () in
  for i = 1 to 1000 do
    ignore (Engine.at engine i (fun () -> ()))
  done;
  Engine.run engine

let sim_tests =
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"eventq-1k" (Staged.stage bench_eventq);
      Test.make ~name:"engine-1k" (Staged.stage bench_engine_events);
    ]

let print_sim_bench () =
  E.Report.section "Simulator primitives (Bechamel; cost per simulated event)";
  let results = run_bench sim_tests in
  E.Report.table
    ~header:[ "primitive"; "ns per event" ]
    [
      [ "eventq schedule+pop"; Printf.sprintf "%.0f" (estimate results "sim/eventq-1k" /. 1000.) ];
      [ "engine schedule+fire"; Printf.sprintf "%.0f" (estimate results "sim/engine-1k" /. 1000.) ];
    ]

(* ---- allocator decision path -------------------------------------------- *)

(* Cost of one Allocator.tick — sample + policy + arbitration + apply — on a
   20-core pool with one LC and one BE binding.  The synthetic sample
   alternates congested/idle phases so every tick walks the full decision
   path and a fair share of ticks actually move cores. *)
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Time' = Skyloft_sim.Time

let alloc_ticks_per_run = 1000

let bench_alloc_ticks make_policy () =
  let engine = Skyloft_sim.Engine.create () in
  let t =
    Allocator.create ~engine ~policy:(make_policy ())
      ~interval:(Time'.us 5) ~total_cores:20 ()
  in
  let phase = ref 0 in
  Allocator.register t ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 20 }
    ~initial:10
    ~sample:(fun () ->
      incr phase;
      let congested = !phase land 8 <> 0 in
      {
        Allocator.runq_len = (if congested then 4 else 0);
        oldest_delay = (if congested then Time'.us 20 else 0);
        busy_ns = !phase * Time'.us (if congested then 48 else 5);
      })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.register t ~app:1 ~name:"be" ~kind:Alloc_policy.Be
    ~bounds:{ Allocator.guaranteed = 0; burstable = 20 }
    ~initial:10
    ~sample:(fun () ->
      { Allocator.runq_len = 100; oldest_delay = 0; busy_ns = !phase * Time'.us 45 })
    ~apply:(fun ~granted:_ ~delta -> Skyloft_hw.Costs.app_switch_ns * abs delta);
  for _ = 1 to alloc_ticks_per_run do
    Allocator.tick t
  done

let alloc_tests =
  Test.make_grouped ~name:"alloc"
    (List.map
       (fun (name, make_policy) ->
         Test.make ~name (Staged.stage (bench_alloc_ticks make_policy)))
       E.Colocate_alloc.policies)

let print_alloc_bench () =
  E.Report.section
    "Core allocator decision path (Bechamel; one tick, 2 apps, 20 cores)";
  let results = run_bench alloc_tests in
  E.Report.table
    ~header:[ "policy"; "ns per tick (this host)" ]
    (List.map
       (fun (name, _) ->
         [
           name;
           Printf.sprintf "%.0f"
             (estimate results (Printf.sprintf "alloc/%s" name)
             /. float_of_int alloc_ticks_per_run);
         ])
       E.Colocate_alloc.policies);
  E.Report.note "the controller runs every 5us of simulated time; its real cost";
  E.Report.note "per tick bounds how many apps/cores one iokernel-style core scales to"

(* The perf-trajectory artifact: LC p99 and BE CPU share per policy at 0.5x
   and 0.8x load, as JSON, so future changes can be compared mechanically. *)
let bench_alloc_json_path = "BENCH_alloc.json"

let write_bench_alloc_json config =
  let loads = [ 0.5; 0.8 ] in
  let per_policy =
    List.map
      (fun ((name, _) as policy) ->
        ( name,
          List.map
            (fun load_frac ->
              (load_frac, E.Colocate_alloc.run_point config ~policy ~load_frac))
            loads ))
      E.Colocate_alloc.policies
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"duration_ms\": %.3f,\n  \"seed\": %d,\n"
       (float_of_int config.E.Config.duration /. 1e6)
       config.E.Config.seed);
  Buffer.add_string buf "  \"policies\": {\n";
  List.iteri
    (fun i (name, pts) ->
      Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
      List.iteri
        (fun j (load_frac, (p : E.Colocate_alloc.point)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      \"%.1f\": { \"lc_p99_us\": %.2f, \"be_share\": %.4f }%s\n"
               load_frac p.E.Colocate_alloc.p99_us p.E.Colocate_alloc.be_share
               (if j = List.length pts - 1 then "" else ",")))
        pts;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if i = List.length per_policy - 1 then "" else ",")))
    per_policy;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out bench_alloc_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  E.Report.note "machine-readable per-policy results written to %s"
    bench_alloc_json_path

(* ---- observability layer (lib/obs) -------------------------------------- *)

(* Cost of the pull-based observation path itself: snapshotting a registry
   the size a two-app run produces, rendering it to Prometheus text, and
   the trace-analysis pass (utilization + invariants) over a full ring. *)
module Registry = Skyloft_obs.Registry
module Trace_analysis = Skyloft_obs.Trace_analysis
module Attribution = Skyloft_obs.Attribution
module Trace = Skyloft_stats.Trace
module Histogram' = Skyloft_stats.Histogram
module Timeseries' = Skyloft_stats.Timeseries

let obs_cores = 8
let obs_spans_per_core = 1000

let obs_registry () =
  let reg = Registry.create () in
  for c = 0 to obs_cores - 1 do
    let labels = [ Registry.core c ] in
    (* slot-backed per-core counter: same snapshot output as the closure
       form this used to be, but incremented as one unboxed slab word *)
    let slot = Registry.counter_slot reg ~labels "bench_counter" in
    Registry.bump_by reg slot c;
    Registry.gauge reg ~labels "bench_gauge" (fun () -> float_of_int c);
    let h = Histogram'.create () in
    for i = 1 to 100 do
      Histogram'.record h (i * 1000)
    done;
    Registry.histogram reg ~labels "bench_hist" h;
    let s = Timeseries'.create () in
    for i = 1 to 100 do
      Timeseries'.record s ~at:(i * 1000) i
    done;
    Registry.series reg ~labels "bench_series" s
  done;
  reg

let obs_trace () =
  let trace = Trace.create ~capacity:(obs_cores * obs_spans_per_core) () in
  for core = 0 to obs_cores - 1 do
    for i = 0 to obs_spans_per_core - 1 do
      let start = i * 2000 in
      Trace.span trace ~core ~app:(i land 1) ~name:"t" ~start ~stop:(start + 1000)
    done
  done;
  trace

let obs_tests =
  let reg = obs_registry () in
  let samples = Registry.snapshot ~until:(Time'.ms 1) reg in
  let trace = obs_trace () in
  Test.make_grouped ~name:"obs"
    [
      Test.make ~name:"snapshot"
        (Staged.stage (fun () -> ignore (Registry.snapshot ~until:(Time'.ms 1) reg)));
      Test.make ~name:"prometheus"
        (Staged.stage (fun () -> ignore (Registry.to_prometheus samples)));
      Test.make ~name:"analysis"
        (Staged.stage (fun () ->
             ignore (Trace_analysis.utilization trace ~until:(Time'.ms 2));
             ignore (Trace_analysis.check trace)));
    ]

let print_obs_bench () =
  E.Report.section
    "Observability layer (Bechamel; registry snapshot/render + trace analysis)";
  let results = run_bench obs_tests in
  E.Report.table
    ~header:[ "operation"; "ns per call (this host)" ]
    [
      [ Printf.sprintf "snapshot (%d instruments)" (4 * obs_cores);
        Printf.sprintf "%.0f" (estimate results "obs/snapshot") ];
      [ "prometheus render"; Printf.sprintf "%.0f" (estimate results "obs/prometheus") ];
      [ Printf.sprintf "trace analysis (%d spans)" (obs_cores * obs_spans_per_core);
        Printf.sprintf "%.0f" (estimate results "obs/analysis") ];
    ];
  E.Report.note "observation is pull-based: none of these costs exist inside a run"

(* ---- Runtime_core dispatch loop ----------------------------------------- *)

(* Real (host) cost of one trip through each runtime's dispatch loop over
   the shared Runtime_core substrate: a fixed batch of short requests is
   driven end to end through a small simulated machine, so the slope
   divided by the batch size is the per-request cost of admit, dequeue,
   switch accounting, completion and re-dispatch.  All four runtimes —
   percpu, centralized, hybrid and worksteal — run the identical lifecycle
   substrate; the spread between them is the cost of each dispatch
   mechanism on top. *)
module Machine = Skyloft_hw.Machine
module Topology = Skyloft_hw.Topology
module Kmod = Skyloft_kernel.Kmod
module Coro = Skyloft_sim.Coro

let core_requests_per_run = 200

let core_small_machine () =
  let engine = Skyloft_sim.Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8)
  in
  let kmod = Kmod.create machine in
  (engine, machine, kmod)

let core_drive engine submit =
  for i = 0 to core_requests_per_run - 1 do
    ignore
      (Skyloft_sim.Engine.at engine (i * Time'.us 2) (fun () -> submit ()))
  done;
  (* periodic timers (per-core ticks, the hybrid monitor) re-arm forever,
     so the run is bounded; 1 ms covers the 400 us arrival window. *)
  Skyloft_sim.Engine.run ~until:(Time'.ms 1) engine

let core_request () = Coro.Compute (Time'.us 1, fun () -> Coro.Exit)

let bench_core_percpu () =
  let engine, machine, kmod = core_small_machine () in
  let rt =
    Skyloft.Percpu.create machine kmod
      ~cores:[ 0; 1; 2; 3; 4 ]
      (Skyloft_policies.Work_stealing.create ~quantum:(Time'.us 30) ())
  in
  let lc = Skyloft.Percpu.create_app rt ~name:"lc" in
  core_drive engine (fun () ->
      ignore (Skyloft.Percpu.spawn rt lc ~name:"r" ~record:false (core_request ())))

let bench_core_centralized () =
  let engine, machine, kmod = core_small_machine () in
  let rt =
    Skyloft.Centralized.create machine kmod ~dispatcher_core:0
      ~worker_cores:[ 1; 2; 3; 4 ] ~quantum:(Time'.us 30)
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Skyloft.Centralized.create_app rt ~name:"lc" in
  core_drive engine (fun () ->
      ignore
        (Skyloft.Centralized.submit rt lc ~name:"r" ~record:false
           (core_request ())))

let bench_core_hybrid () =
  let engine, machine, kmod = core_small_machine () in
  let rt =
    Skyloft.Hybrid.create machine kmod ~dispatcher_core:0
      ~worker_cores:[ 1; 2; 3; 4 ] ~quantum:(Time'.us 30)
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Skyloft.Hybrid.create_app rt ~name:"lc" in
  core_drive engine (fun () ->
      ignore
        (Skyloft.Hybrid.submit rt lc ~name:"r" ~record:false (core_request ())))

let bench_core_worksteal () =
  let engine, machine, kmod = core_small_machine () in
  let rt =
    Skyloft.Worksteal.create machine kmod
      ~cores:[ 0; 1; 2; 3; 4 ]
      ~quantum:(Time'.us 30) ()
  in
  let lc = Skyloft.Worksteal.create_app rt ~name:"lc" in
  core_drive engine (fun () ->
      ignore
        (Skyloft.Worksteal.spawn rt lc ~name:"r" ~record:false (core_request ())))

(* The same three loops with the flight recorder attached: every span and
   scheduling instant is recorded into the flat binary ring, so the delta
   against the untraced numbers is the full tracing tax.  The ring is
   created once per bench and reused across iterations (the realistic
   deployment: one long-lived recorder, wrapping), so the measured tax
   is the push cost itself — a handful of unboxed word stores per
   event — not ring setup. *)
let core_traced bench_with_trace =
  let trace = Trace.create ~capacity:100_000 () in
  fun () -> bench_with_trace trace

let bench_core_percpu_traced =
  core_traced (fun trace ->
      let engine, machine, kmod = core_small_machine () in
      let rt =
        Skyloft.Percpu.create machine kmod
          ~cores:[ 0; 1; 2; 3; 4 ]
          (Skyloft_policies.Work_stealing.create ~quantum:(Time'.us 30) ())
      in
      Skyloft.Percpu.set_trace rt trace;
      let lc = Skyloft.Percpu.create_app rt ~name:"lc" in
      core_drive engine (fun () ->
          ignore
            (Skyloft.Percpu.spawn rt lc ~name:"r" ~record:false (core_request ()))))

let bench_core_centralized_traced =
  core_traced (fun trace ->
      let engine, machine, kmod = core_small_machine () in
      let rt =
        Skyloft.Centralized.create machine kmod ~dispatcher_core:0
          ~worker_cores:[ 1; 2; 3; 4 ] ~quantum:(Time'.us 30)
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      Skyloft.Centralized.set_trace rt trace;
      let lc = Skyloft.Centralized.create_app rt ~name:"lc" in
      core_drive engine (fun () ->
          ignore
            (Skyloft.Centralized.submit rt lc ~name:"r" ~record:false
               (core_request ()))))

let bench_core_hybrid_traced =
  core_traced (fun trace ->
      let engine, machine, kmod = core_small_machine () in
      let rt =
        Skyloft.Hybrid.create machine kmod ~dispatcher_core:0
          ~worker_cores:[ 1; 2; 3; 4 ] ~quantum:(Time'.us 30)
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      Skyloft.Hybrid.set_trace rt trace;
      let lc = Skyloft.Hybrid.create_app rt ~name:"lc" in
      core_drive engine (fun () ->
          ignore
            (Skyloft.Hybrid.submit rt lc ~name:"r" ~record:false
               (core_request ()))))

let bench_core_worksteal_traced =
  core_traced (fun trace ->
      let engine, machine, kmod = core_small_machine () in
      let rt =
        Skyloft.Worksteal.create machine kmod
          ~cores:[ 0; 1; 2; 3; 4 ]
          ~quantum:(Time'.us 30) ()
      in
      Skyloft.Worksteal.set_trace rt trace;
      let lc = Skyloft.Worksteal.create_app rt ~name:"lc" in
      core_drive engine (fun () ->
          ignore
            (Skyloft.Worksteal.spawn rt lc ~name:"r" ~record:false
               (core_request ()))))

let core_runtime_names = [ "percpu"; "centralized"; "hybrid"; "worksteal" ]

let core_tests =
  Test.make_grouped ~name:"runtime-core"
    [
      Test.make ~name:"percpu" (Staged.stage bench_core_percpu);
      Test.make ~name:"centralized" (Staged.stage bench_core_centralized);
      Test.make ~name:"hybrid" (Staged.stage bench_core_hybrid);
      Test.make ~name:"worksteal" (Staged.stage bench_core_worksteal);
      Test.make ~name:"percpu-traced" (Staged.stage bench_core_percpu_traced);
      Test.make ~name:"centralized-traced"
        (Staged.stage bench_core_centralized_traced);
      Test.make ~name:"hybrid-traced" (Staged.stage bench_core_hybrid_traced);
      Test.make ~name:"worksteal-traced"
        (Staged.stage bench_core_worksteal_traced);
    ]

(* ---- trace push: flat ring vs the boxed representation ------------------- *)

(* The re-backing's scoreboard at event granularity.  [Boxed_trace] is a
   faithful reimplementation of the representation the flight recorder
   replaced — one heap-allocated constructor per event stored into an
   [event option array], paying allocation, the write barrier on every
   ring store, and promotion of every retained event out of the minor
   heap.  The flat ring pays eight unsafe byte stores into preallocated
   [Bytes] and an interning memo hit.  Both push the identical event
   stream over a wrapping ring. *)
module Boxed_trace = struct
  type event =
    | Span of { core : int; app : int; name : string; start : int; stop : int }
    | Instant of { core : int; at : int; kind : int; name : string }

  type t = {
    capacity : int;
    ring : event option array;
    mutable head : int;
    mutable count : int;
    mutable dropped : int;
  }

  let create ~capacity =
    { capacity; ring = Array.make capacity None; head = 0; count = 0; dropped = 0 }

  let push t ev =
    t.ring.(t.head) <- Some ev;
    t.head <- (t.head + 1) mod t.capacity;
    if t.count = t.capacity then t.dropped <- t.dropped + 1
    else t.count <- t.count + 1

  let span t ~core ~app ~name ~start ~stop =
    push t (Span { core; app; name; start; stop })

  let instant t ~core ~at ~kind ~name = push t (Instant { core; at; kind; name })
end

let trace_events_per_run = 10_000
let trace_ring_capacity = 4_096  (* smaller than the stream: wrap included *)

let bench_trace_flat () =
  let t = Skyloft_stats.Trace.create ~capacity:trace_ring_capacity () in
  for i = 0 to trace_events_per_run - 1 do
    if i land 3 = 3 then
      Skyloft_stats.Trace.instant t ~core:(i land 7) ~at:(i * 50)
        Skyloft_stats.Trace.Preempt ~name:"tick"
    else
      Skyloft_stats.Trace.span t ~core:(i land 7) ~app:1 ~name:"req"
        ~start:(i * 50)
        ~stop:((i * 50) + 40)
  done

let bench_trace_boxed () =
  let t = Boxed_trace.create ~capacity:trace_ring_capacity in
  for i = 0 to trace_events_per_run - 1 do
    if i land 3 = 3 then
      Boxed_trace.instant t ~core:(i land 7) ~at:(i * 50) ~kind:0 ~name:"tick"
    else
      Boxed_trace.span t ~core:(i land 7) ~app:1 ~name:"req" ~start:(i * 50)
        ~stop:((i * 50) + 40)
  done

let trace_push_tests =
  Test.make_grouped ~name:"trace-push"
    [
      Test.make ~name:"flat" (Staged.stage bench_trace_flat);
      Test.make ~name:"boxed" (Staged.stage bench_trace_boxed);
    ]

(* The eventq re-backing's scoreboard at event granularity.  [Boxed_eventq]
   mirrors the boxed binary heap the flat SoA heap replaced: a 4-field
   entry record plus a 3-field handle record allocated per [schedule], and
   an [int ref] shared with every handle.  The flat heap moves three
   machine words per node in one preallocated int Bigarray and hands out
   int handles, so the identical schedule+pop stream allocates nothing. *)
module Boxed_eventq = struct
  type handle = {
    mutable cancelled : bool;
    mutable in_heap : bool;
    cancelled_in_heap : int ref;
  }

  type 'a entry = { time : int; seq : int; payload : 'a; handle : handle }

  type 'a t = {
    mutable heap : 'a entry array;
    mutable len : int;
    mutable next_seq : int;
    cancelled_in_heap : int ref;
  }

  let create () = { heap = [||]; len = 0; next_seq = 0; cancelled_in_heap = ref 0 }
  let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let grow t =
    let cap = Array.length t.heap in
    let fresh = Array.make (if cap = 0 then 16 else cap * 2) t.heap.(0) in
    Array.blit t.heap 0 fresh 0 t.len;
    t.heap <- fresh

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if entry_lt t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < t.len && entry_lt t.heap.(left) t.heap.(!smallest) then smallest := left;
    if right < t.len && entry_lt t.heap.(right) t.heap.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let schedule t ~at payload =
    let handle =
      { cancelled = false; in_heap = true; cancelled_in_heap = t.cancelled_in_heap }
    in
    let entry = { time = at; seq = t.next_seq; payload; handle } in
    t.next_seq <- t.next_seq + 1;
    if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
    if t.len = Array.length t.heap then grow t;
    t.heap.(t.len) <- entry;
    t.len <- t.len + 1;
    sift_up t (t.len - 1);
    handle

  let pop_raw t =
    if t.len = 0 then None
    else begin
      let top = t.heap.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.heap.(0) <- t.heap.(t.len);
        sift_down t 0
      end;
      top.handle.in_heap <- false;
      if top.handle.cancelled then decr t.cancelled_in_heap;
      Some top
    end

  let rec pop t =
    match pop_raw t with
    | None -> None
    | Some e -> if e.handle.cancelled then pop t else Some (e.time, e.payload)
end

let eventq_ops_per_run = 1_000
let eventq_standing = 256  (* heap depth the round trips sift through *)

(* Steady state is the claim under test — the queues are built and warmed
   once, so the measured region is purely schedule+pop round trips at a
   standing heap depth (an engine mid-run), not queue construction or
   capacity growth.  The standing events sit at [max_int], so every pop
   returns the event just scheduled. *)
let eventq_flat_q =
  let module Eventq = Skyloft_sim.Eventq in
  let q = Eventq.create () in
  for _ = 1 to eventq_standing do
    ignore (Eventq.schedule q ~at:max_int ())
  done;
  (* one round trip so the last capacity doubling happens here, not in the
     first measured run *)
  ignore (Eventq.schedule q ~at:0 ());
  Eventq.pop_exn q;
  q

let eventq_flat_clock = ref 1

let bench_eventq_flat () =
  let module Eventq = Skyloft_sim.Eventq in
  let q = eventq_flat_q in
  let t = !eventq_flat_clock in
  for i = 0 to eventq_ops_per_run - 1 do
    ignore (Eventq.schedule q ~at:(t + i) ());
    Eventq.pop_exn q
  done;
  eventq_flat_clock := t + eventq_ops_per_run

let eventq_boxed_q =
  let q = Boxed_eventq.create () in
  for _ = 1 to eventq_standing do
    ignore (Boxed_eventq.schedule q ~at:max_int ())
  done;
  ignore (Boxed_eventq.schedule q ~at:0 ());
  ignore (Boxed_eventq.pop q);
  q

let eventq_boxed_clock = ref 1

let bench_eventq_boxed () =
  let q = eventq_boxed_q in
  let t = !eventq_boxed_clock in
  for i = 0 to eventq_ops_per_run - 1 do
    ignore (Boxed_eventq.schedule q ~at:(t + i) ());
    ignore (Boxed_eventq.pop q)
  done;
  eventq_boxed_clock := t + eventq_ops_per_run

let eventq_op_tests =
  Test.make_grouped ~name:"eventq-op"
    [
      Test.make ~name:"flat" (Staged.stage bench_eventq_flat);
      Test.make ~name:"boxed" (Staged.stage bench_eventq_boxed);
    ]

let bench_core_json_path = "BENCH_core.json"

let print_core_bench () =
  E.Report.section
    "Runtime_core dispatch loop (Bechamel; one short request end to end)";
  let results = run_bench core_tests in
  let per_req name =
    estimate results (Printf.sprintf "runtime-core/%s" name)
    /. float_of_int core_requests_per_run
  in
  E.Report.table
    ~header:
      [ "runtime"; "ns per request"; "ns per request (traced)"; "tracing tax" ]
    (List.map
       (fun name ->
         let plain = per_req name and traced = per_req (name ^ "-traced") in
         [
           name;
           Printf.sprintf "%.0f" plain;
           Printf.sprintf "%.0f" traced;
           Printf.sprintf "%+.0f%%" ((traced -. plain) /. plain *. 100.);
         ])
       core_runtime_names);
  E.Report.note "all four runtimes share the Runtime_core lifecycle substrate;";
  E.Report.note "the spread is each dispatch mechanism's cost on top of it";
  let push_results = run_bench trace_push_tests in
  let per_event name =
    estimate push_results (Printf.sprintf "trace-push/%s" name)
    /. float_of_int trace_events_per_run
  in
  let flat = per_event "flat" and boxed = per_event "boxed" in
  E.Report.table
    ~header:[ "trace backend"; "ns per event (this host)" ]
    [
      [ "flat 64B binary ring"; Printf.sprintf "%.1f" flat ];
      [ "boxed ring (replaced)"; Printf.sprintf "%.1f" boxed ];
    ];
  E.Report.note
    "flat push stores 8 unboxed words into a preallocated Bigarray ring: \
     zero allocation, no write barrier — %.1fx the boxed representation it \
     replaced"
    (boxed /. flat);
  let eventq_results = run_bench eventq_op_tests in
  let per_op name =
    estimate eventq_results (Printf.sprintf "eventq-op/%s" name)
    /. float_of_int eventq_ops_per_run
  in
  let eq_flat = per_op "flat" and eq_boxed = per_op "boxed" in
  E.Report.table
    ~header:[ "eventq backend"; "ns per schedule+pop (this host)" ]
    [
      [ "flat SoA heap"; Printf.sprintf "%.1f" eq_flat ];
      [ "boxed heap (replaced)"; Printf.sprintf "%.1f" eq_boxed ];
    ];
  E.Report.note
    "the flat heap sifts 3-word nodes inside one int Bigarray and returns \
     int handles: schedule+pop allocates nothing — %.1fx the boxed heap it \
     replaced"
    (eq_boxed /. eq_flat);
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"requests_per_run\": %d,\n" core_requests_per_run);
  let obj key names value_of =
    Buffer.add_string buf (Printf.sprintf "  %S: {\n" key);
    List.iteri
      (fun i name ->
        Buffer.add_string buf
          (Printf.sprintf "    %S: %.1f%s\n" name (value_of name)
             (if i = List.length names - 1 then "" else ",")))
      names;
    Buffer.add_string buf "  },\n"
  in
  obj "ns_per_request" core_runtime_names per_req;
  obj "ns_per_request_traced" core_runtime_names (fun n ->
      per_req (n ^ "-traced"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"eventq_ns_per_op\": { \"flat\": %.1f, \"boxed_reference\": %.1f, \
        \"speedup\": %.2f },\n"
       eq_flat eq_boxed (eq_boxed /. eq_flat));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_ns_per_event\": { \"flat\": %.1f, \"boxed_reference\": \
        %.1f, \"speedup\": %.2f }\n"
       flat boxed (boxed /. flat));
  Buffer.add_string buf "}\n";
  let oc = open_out bench_core_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  E.Report.note "dispatch-loop overhead written to %s" bench_core_json_path

(* The determinism artifact: per runtime, the attribution means and the
   fingerprints of the registry-on and registry-off runs — the two must be
   identical, proving observation never perturbs the simulation. *)
let bench_obs_json_path = "BENCH_obs.json"

let write_bench_obs_json config =
  let runs =
    List.map
      (fun ((name, _) as runtime) ->
        let on_ = E.Obs_report.run_point config ~runtime ~instrumented:true in
        let off = E.Obs_report.run_point config ~runtime ~instrumented:false in
        (name, on_, off))
      E.Obs_report.runtimes
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"duration_ms\": %.3f,\n  \"seed\": %d,\n"
       (float_of_int config.E.Config.duration /. 1e6)
       config.E.Config.seed);
  Buffer.add_string buf "  \"runtimes\": {\n";
  List.iteri
    (fun i (name, (on_ : E.Obs_report.point), (off : E.Obs_report.point)) ->
      let lc = List.assoc "lc" on_.E.Obs_report.rows in
      let mean h = Histogram'.mean h in
      Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"requests\": %d, \"mismatches\": %d, \"violations\": %d,\n"
           on_.E.Obs_report.requests on_.E.Obs_report.mismatches
           (List.length on_.E.Obs_report.violations));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"fingerprint_on\": %S, \"fingerprint_off\": %S, \
            \"identical\": %b,\n"
           on_.E.Obs_report.fingerprint off.E.Obs_report.fingerprint
           (on_.E.Obs_report.fingerprint = off.E.Obs_report.fingerprint));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"mean_ns\": { \"queueing\": %.1f, \"service\": %.1f, \
            \"overhead\": %.1f, \"stall\": %.1f, \"response\": %.1f }\n"
           (mean (Attribution.queueing lc))
           (mean (Attribution.service lc))
           (mean (Attribution.overhead lc))
           (mean (Attribution.stall lc))
           (mean (Attribution.response lc)));
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out bench_obs_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun (name, (on_ : E.Obs_report.point), (off : E.Obs_report.point)) ->
      if on_.E.Obs_report.fingerprint <> off.E.Obs_report.fingerprint then
        failwith
          (Printf.sprintf
             "BENCH_obs: %s registry-on run differs from registry-off run" name))
    runs;
  E.Report.note "obs determinism artifact written to %s" bench_obs_json_path

(* ---- domain-parallel experiment driver (lib/experiments) ---------------- *)

(* Wall-clock scaling of the [-j] sweep driver over the nine golden cells
   (three traced runs, three fault-sweep points, three obs reports — real
   simulations, seconds each).  Bechamel's per-run OLS is the wrong tool
   for a multi-second domain fan-out, so this measures wall time directly
   with the monotonic clock.  The digests must be identical at every job
   count — the same invariance the determinism gate checks — so the bench
   doubles as an end-to-end proof on whatever host runs it. *)
let bench_parallel_json_path = "BENCH_parallel.json"

let write_bench_parallel_json () =
  E.Report.section
    "Domain-parallel sweep driver: wall clock over the golden cells";
  (* Toolkit's MEASURE view of the monotonic clock: [get] is now-ns. *)
  let clock = Toolkit.Monotonic_clock.make () in
  let wall f =
    let t0 = Toolkit.Monotonic_clock.get clock in
    let r = f () in
    let t1 = Toolkit.Monotonic_clock.get clock in
    ((t1 -. t0) /. 1e9, r)
  in
  let host_cores = Domain.recommended_domain_count () in
  let jobs_levels = [ 1; 2; 4; 8 ] in
  let baseline = ref [] in
  let rows =
    List.map
      (fun jobs ->
        let secs, fps = wall (fun () -> E.Golden.fingerprints ~jobs ()) in
        if jobs = 1 then baseline := fps
        else if fps <> !baseline then
          failwith
            (Printf.sprintf
               "BENCH_parallel: -j %d produced different results" jobs);
        (jobs, secs))
      jobs_levels
  in
  let j1 = List.assoc 1 rows in
  E.Report.table
    ~header:[ "-j"; "wall (s)"; "speedup vs -j 1" ]
    (List.map
       (fun (jobs, secs) ->
         [
           string_of_int jobs;
           Printf.sprintf "%.2f" secs;
           Printf.sprintf "%.2fx" (j1 /. secs);
         ])
       rows);
  E.Report.note "results identical at every -j (checked against -j 1)";
  E.Report.note "host has %d core(s); speedup saturates at the core count"
    host_cores;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"host_cores\": %d,\n" host_cores);
  Buffer.add_string buf "  \"cells\": 9,\n";
  Buffer.add_string buf "  \"wall_seconds\": {\n";
  List.iteri
    (fun i (jobs, secs) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%d\": { \"seconds\": %.3f, \"speedup\": %.3f }%s\n"
           jobs secs (j1 /. secs)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"results_identical_across_jobs\": true\n";
  Buffer.add_string buf "}\n";
  let oc = open_out bench_parallel_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  E.Report.note "driver scaling written to %s" bench_parallel_json_path

(* ---- scenario DSL throughput (lib/scenario) ----------------------------- *)

(* Host cost of the scale pipeline: wall clock and host-ns per simulated
   request for each scale scenario on each runtime, at a fixed request
   count small enough for a bench run but big enough to amortize setup.
   Like the parallel bench this is a direct monotonic-clock measurement
   (cells are 100 ms+ simulations, not Bechamel-OLS territory), and it
   doubles as an identity proof: the digest of every cell at [-j 4] must
   equal the [-j 1] digest byte for byte. *)
let bench_scenario_json_path = "BENCH_scenario.json"
let bench_scenario_requests = 100_000

let write_bench_scenario_json () =
  E.Report.section
    "Scenario DSL: host cost per simulated request (scale cells)";
  let clock = Toolkit.Monotonic_clock.make () in
  let wall f =
    let t0 = Toolkit.Monotonic_clock.get clock in
    let r = f () in
    let t1 = Toolkit.Monotonic_clock.get clock in
    ((t1 -. t0) /. 1e9, r)
  in
  let module Sc = Skyloft_scenario.Scenario in
  let cells =
    List.concat_map
      (fun sc -> List.map (fun rt -> (sc, rt)) E.Scale.runtimes)
      E.Scale.scenarios
  in
  let run_all ~jobs =
    E.Parallel.map ~jobs
      (fun (scenario, runtime) ->
        let secs, d =
          wall (fun () ->
              Sc.run ~seed:7 ~requests:bench_scenario_requests ~runtime scenario)
        in
        (secs, Sc.digest_string d))
      cells
  in
  let j1 = run_all ~jobs:1 in
  let j4 = run_all ~jobs:4 in
  List.iteri
    (fun i ((_, d1), (_, d4)) ->
      if not (String.equal d1 d4) then
        let sc, rt = List.nth cells i in
        failwith
          (Printf.sprintf "BENCH_scenario: %s/%s digest differs at -j 4"
             sc.Sc.name (Sc.runtime_name rt)))
    (List.combine j1 j4);
  let rows =
    List.map2
      (fun (sc, rt) (secs, _) ->
        ( sc.Sc.name,
          Sc.runtime_name rt,
          secs,
          secs *. 1e9 /. float_of_int bench_scenario_requests ))
      cells j1
  in
  E.Report.table
    ~header:[ "scenario"; "runtime"; "wall (s)"; "host ns/request" ]
    (List.map
       (fun (sc, rt, secs, nspr) ->
         [ sc; rt; Printf.sprintf "%.2f" secs; Printf.sprintf "%.0f" nspr ])
       rows);
  E.Report.note "%d requests per cell; digests at -j 4 == -j 1 (checked)"
    bench_scenario_requests;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"requests_per_cell\": %d,\n" bench_scenario_requests);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i (sc, rt, secs, nspr) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"scenario\": \"%s\", \"runtime\": \"%s\", \"wall_seconds\": \
            %.3f, \"host_ns_per_request\": %.1f }%s\n"
           sc rt secs nspr
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"digests_identical_j1_j4\": true\n";
  Buffer.add_string buf "}\n";
  let oc = open_out bench_scenario_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  E.Report.note "scenario throughput written to %s" bench_scenario_json_path

(* ---- oversubscription bench: broker cost per request -------------------- *)

let bench_oversub_json_path = "BENCH_oversub.json"
let bench_oversub_requests = 2_000

let write_bench_oversub_json () =
  E.Report.section
    "Oversubscribed machine: host cost per simulated request (broker cells)";
  let clock = Toolkit.Monotonic_clock.make () in
  let wall f =
    let t0 = Toolkit.Monotonic_clock.get clock in
    let r = f () in
    let t1 = Toolkit.Monotonic_clock.get clock in
    ((t1 -. t0) /. 1e9, r)
  in
  (* one cell per (mix, scenario) at a fixed fleet size: the broker's own
     overhead dominates here, not the workload *)
  let n = 8 in
  let cells =
    List.concat_map
      (fun mix -> List.map (fun sc -> (mix, sc)) E.Oversub.scenarios)
      E.Oversub.mixes
  in
  let run_all ~jobs =
    E.Parallel.map ~jobs
      (fun (mix, scenario) ->
        let secs, r =
          wall (fun () ->
              E.Oversub.run_cell ~seed:7 ~mix ~n ~scenario
                ~requests:bench_oversub_requests)
        in
        (secs, Skyloft_scenario.Placement.digest_string r))
      cells
  in
  let j1 = run_all ~jobs:1 in
  let j4 = run_all ~jobs:4 in
  List.iteri
    (fun i ((_, d1), (_, d4)) ->
      if not (String.equal d1 d4) then
        let mix, sc = List.nth cells i in
        failwith
          (Printf.sprintf "BENCH_oversub: %s/%s digest differs at -j 4" mix sc))
    (List.combine j1 j4);
  let total_requests = n * bench_oversub_requests in
  let rows =
    List.map2
      (fun (mix, sc) (secs, _) ->
        (mix, sc, secs, secs *. 1e9 /. float_of_int total_requests))
      cells j1
  in
  E.Report.table
    ~header:[ "mix"; "scenario"; "wall (s)"; "host ns/request" ]
    (List.map
       (fun (mix, sc, secs, nspr) ->
         [ mix; sc; Printf.sprintf "%.2f" secs; Printf.sprintf "%.0f" nspr ])
       rows);
  E.Report.note
    "%d tenants x %d requests per cell; digests at -j 4 == -j 1 (checked)" n
    bench_oversub_requests;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"tenants\": %d,\n" n);
  Buffer.add_string buf
    (Printf.sprintf "  \"requests_per_tenant\": %d,\n" bench_oversub_requests);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i (mix, sc, secs, nspr) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"mix\": \"%s\", \"scenario\": \"%s\", \"wall_seconds\": \
            %.3f, \"host_ns_per_request\": %.1f }%s\n"
           mix sc secs nspr
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"digests_identical_j1_j4\": true\n";
  Buffer.add_string buf "}\n";
  let oc = open_out bench_oversub_json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  E.Report.note "oversub throughput written to %s" bench_oversub_json_path

(* ---- main --------------------------------------------------------------- *)

let () =
  let config =
    match Sys.getenv_opt "SKYLOFT_BENCH" with
    | Some "quick" -> E.Config.quick
    | Some "full" -> E.Config.full
    | Some "default" | None | Some _ -> E.Config.default
  in
  Printf.printf "Skyloft reproduction benchmark harness\n";
  Printf.printf "(simulated duration per data point: %s; seed %d)\n"
    (Format.asprintf "%a" Skyloft_sim.Time.pp config.E.Config.duration)
    config.E.Config.seed;

  (* SKYLOFT_BENCH_ONLY=core: just the dispatch-loop + trace-push
     microbenches and BENCH_core.json (the flight-recorder scoreboard). *)
  if Sys.getenv_opt "SKYLOFT_BENCH_ONLY" = Some "core" then begin
    print_core_bench ();
    exit 0
  end;

  (* Microbenchmarks (real code measured on this host). *)
  print_table7_measured ();
  print_sim_bench ();
  print_alloc_bench ();
  print_obs_bench ();
  print_core_bench ();

  (* Tables. *)
  ignore (E.Tables.print_table4 ());
  E.Tables.print_table5 ();
  ignore (E.Tables.print_table6 ());
  ignore (E.Tables.print_table7_model ());
  E.Tables.print_appswitch ();

  (* Figures. *)
  ignore (E.Fig5.print config);
  ignore (E.Fig6.print config);
  ignore (E.Fig7.print_a config);
  let b = E.Fig7.print_b config in
  ignore (E.Fig7.print_c config b);
  ignore (E.Fig8.print_a config);
  ignore (E.Fig8.print_b config);

  (* Core-allocation policy comparison (lib/alloc) + perf-trajectory JSON. *)
  ignore (E.Colocate_alloc.print config);
  write_bench_alloc_json config;

  (* Fault-rate sweep (lib/fault): recovery machinery + BENCH_fault.json. *)
  ignore (E.Fault_sweep.print config);

  (* Observability layer (lib/obs): attribution identity, trace invariants,
     and the registry-on == registry-off determinism proof + BENCH_obs.json. *)
  write_bench_obs_json config;

  (* Domain-parallel sweep driver: -j scaling + cross-jobs identity proof
     + BENCH_parallel.json. *)
  write_bench_parallel_json ();

  (* Scenario DSL (lib/scenario): host cost per simulated request over the
     scale cells + -j identity proof + BENCH_scenario.json. *)
  write_bench_scenario_json ();

  (* Core broker (lib/alloc + lib/scenario placement): oversubscribed
     multi-tenant cells + -j identity proof + BENCH_oversub.json. *)
  write_bench_oversub_json ();

  (* Ablations of the design choices (DESIGN.md §5). *)
  E.Ablations.print config;
  Printf.printf "\nAll tables and figures regenerated.\n"
