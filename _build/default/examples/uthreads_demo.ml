(* Real user-level threads (OCaml 5 effect handlers): the live counterpart
   of the simulated LibOS, used for the Table 7 microbenchmarks.

   A tiny pipeline — producers, a bounded queue, consumers — entirely in
   user space: no kernel threads, no syscalls, cooperative scheduling.

     dune exec examples/uthreads_demo.exe *)

module U = Skyloft_uthread.Uthread

let () =
  let m = U.Mutex.create () in
  let not_full = U.Condvar.create () and not_empty = U.Condvar.create () in
  let buf = Queue.create () and capacity = 8 in
  let produced = ref 0 and consumed = ref 0 in
  let items_per_producer = 10_000 and producers = 4 and consumers = 2 in
  let total = producers * items_per_producer in

  let producer id () =
    for i = 1 to items_per_producer do
      U.Mutex.lock m;
      while Queue.length buf >= capacity do
        U.Condvar.wait not_full m
      done;
      Queue.push (id, i) buf;
      incr produced;
      U.Condvar.signal not_empty;
      U.Mutex.unlock m
    done
  in
  let consumer () =
    while !consumed < total do
      U.Mutex.lock m;
      while Queue.is_empty buf && !consumed < total do
        if !produced >= total && Queue.is_empty buf then ()
        else U.Condvar.wait not_empty m
      done;
      (match Queue.take_opt buf with
      | Some _ -> incr consumed
      | None -> ());
      U.Condvar.signal not_full;
      U.Mutex.unlock m
    done;
    (* wake any sibling still waiting *)
    U.Condvar.broadcast not_empty
  in

  let t0 = Sys.time () in
  U.run (fun () ->
      let ps = List.init producers (fun i -> U.spawn (producer i)) in
      let cs = List.init consumers (fun _ -> U.spawn consumer) in
      List.iter U.join ps;
      List.iter U.join cs);
  let dt = Sys.time () -. t0 in
  Printf.printf "pipelined %d items through %d producers / %d consumers\n" !consumed
    producers consumers;
  Printf.printf "%.2f us per item end-to-end, all in user space\n"
    (dt *. 1e6 /. float_of_int total);
  Printf.printf
    "=> every lock, wait, signal and switch here is a function call, not a syscall\n"
