(* Implementing a custom scheduling policy against the Table 2 interface.

   The paper's flexibility claim is that a new policy is a few dozen lines
   against the general scheduling operations.  Here is the whole of a
   preemptive Shortest-Remaining-Service-First (SRSF) scheduler — runqueue
   ordered by declared service demand, plus quantum preemption so a newly
   arrived short job displaces a long-running one — and a head-to-head
   against FIFO on a bimodal workload.

     dune exec examples/custom_policy.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Summary = Skyloft_stats.Summary
module Dist = Skyloft_sim.Dist
module Loadgen = Skyloft_net.Loadgen
module Packet = Skyloft_net.Packet

(* ---- the custom policy: 35 lines -------------------------------------- *)

let srsf ~quantum : Sched_ops.ctor =
 fun view ->
  let q = Runqueue.create () in
  (* insert ordered by declared service, shortest first (a rebuild per
     enqueue is fine at example scale) *)
  let enqueue task =
    let all =
      List.sort
        (fun a b -> compare a.Task.service b.Task.service)
        (task :: Runqueue.to_list q)
    in
    List.iter (fun t -> ignore (Runqueue.remove q t)) (Runqueue.to_list q);
    List.iter (Runqueue.push_tail q) all
  in
  {
    Sched_ops.policy_name = "srsf";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ task -> enqueue task);
    task_dequeue = (fun ~cpu:_ -> Runqueue.pop_head q);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        enqueue task;
        Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
    sched_timer_tick =
      (fun ~cpu:_ task ->
        (* preempt when a shorter job waits *)
        match Runqueue.peek_head q with
        | Some head -> head.Task.service < task.Task.service
                       && view.now () - task.Task.run_start >= quantum
        | None -> false);
    sched_balance = Sched_ops.no_balance;
  }

(* ---- head-to-head ------------------------------------------------------ *)

let bimodal = Dist.Bimodal { p_short = 0.9; short = Time.us 10; long = Time.ms 1 }

let run name ctor =
  let engine = Engine.create ~seed:3 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt = Percpu.create machine kmod ~cores:[ 0; 1 ] ~timer_hz:100_000 ctor in
  let app = Percpu.create_app rt ~name in
  let rng = Engine.split_rng engine in
  Loadgen.poisson engine ~rng ~rate_rps:15_000.0 ~service:bimodal ~duration:(Time.ms 200)
    (fun (pkt : Packet.t) ->
      ignore
        (Percpu.spawn rt app ~name:"req" ~arrival:pkt.arrival ~service:pkt.service
           (Coro.compute_then_exit pkt.service)));
  Engine.run ~until:(Time.ms 250) engine;
  Printf.printf "%-6s  requests=%d  p50=%-10s p99=%-10s p99.9=%s\n" name
    (Summary.requests app.App.summary)
    (Format.asprintf "%a" Time.pp (Summary.latency_p app.App.summary 50.0))
    (Format.asprintf "%a" Time.pp (Summary.latency_p app.App.summary 99.0))
    (Format.asprintf "%a" Time.pp (Summary.latency_p app.App.summary 99.9))

let () =
  print_endline "bimodal load (90% 10us / 10% 1ms) on 2 cores at ~80% utilisation:";
  run "fifo" (Skyloft_policies.Fifo.create ());
  run "srsf" (srsf ~quantum:(Time.us 10));
  print_endline "=> the 35-line SRSF policy rescues the short requests' tail"
