examples/colocate.mli:
