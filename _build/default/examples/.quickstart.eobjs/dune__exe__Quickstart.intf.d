examples/quickstart.mli:
