examples/trace_scheduling.mli:
