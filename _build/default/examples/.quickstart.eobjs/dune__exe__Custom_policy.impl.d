examples/custom_policy.ml: Format List Printf Skyloft Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_policies Skyloft_sim Skyloft_stats
