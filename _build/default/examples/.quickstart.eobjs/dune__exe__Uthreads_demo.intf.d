examples/uthreads_demo.mli:
