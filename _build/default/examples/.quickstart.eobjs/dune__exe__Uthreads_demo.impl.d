examples/uthreads_demo.ml: List Printf Queue Skyloft_uthread Sys
