examples/colocate.ml: Format Printf Skyloft Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_policies Skyloft_sim Skyloft_stats
