examples/quickstart.ml: Format Printf Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_stats
