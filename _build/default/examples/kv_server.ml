(* A RocksDB-style key-value server over the kernel-bypass network path:
   NIC with RSS steering into per-core rings, work-stealing scheduling, and
   the headline feature — microsecond preemption via user-space timer
   interrupts that rescues GETs stuck behind 591 us SCANs (§5.3,
   Figure 8b).

     dune exec examples/kv_server.exe *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Summary = Skyloft_stats.Summary
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen
module Udp_server = Skyloft_apps.Udp_server
module Rocksdb = Skyloft_apps.Rocksdb

let serve ~preemptive =
  let engine = Engine.create ~seed:5 () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let cores = [ 0; 1; 2; 3 ] in
  let quantum = if preemptive then Some (Time.us 5) else None in
  let rt =
    Percpu.create machine kmod ~cores ~timer_hz:100_000 ~preemption:preemptive
      (Skyloft_policies.Work_stealing.create ?quantum ())
  in
  let app = Percpu.create_app rt ~name:"rocksdb" in
  let nic = Nic.create engine ~queues:(List.length cores) () in
  Udp_server.attach rt app nic ~cores;
  let rng = Engine.split_rng engine in
  (* ~60% load of the 4-core saturation for the bimodal mix *)
  let rate = 0.6 *. Rocksdb.saturation_rps ~cores:4 in
  Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Rocksdb.service
    ~duration:(Time.ms 300) (fun pkt -> Nic.rx nic pkt);
  Engine.run ~until:(Time.ms 350) engine;
  (app, Percpu.preemptions rt)

let describe label (app, preemptions) =
  Printf.printf "%-28s p99.9 slowdown=%6.1fx   p99.9 latency=%-10s preemptions=%d\n"
    label
    (Summary.slowdown_p app.App.summary 99.9)
    (Format.asprintf "%a" Time.pp (Summary.latency_p app.App.summary 99.9))
    preemptions

let () =
  print_endline
    "RocksDB server, 50% GET (0.95us) / 50% SCAN (591us), 4 cores, 60% load:";
  describe "work stealing (cooperative)" (serve ~preemptive:false);
  describe "work stealing + 5us quantum" (serve ~preemptive:true);
  print_endline
    "=> same policy, same code path; enabling the user-space timer interrupt";
  print_endline
    "   handler turns a 600x-service-time tail into a bounded one (Fig. 8b)"
