(** POSIX-flavoured facade over {!Uthread}.

    The paper's LibOS exposes POSIX-compatible threading APIs so
    applications can switch between Linux and Skyloft scheduling without
    source changes (§2.4, §3.1).  This module gives ported code the
    familiar names over the effects-based user-level threads; every call
    maps 1:1 onto a {!Uthread} operation and stays entirely in user
    space. *)

type pthread_t
type pthread_mutex_t
type pthread_cond_t

val pthread_create : (unit -> unit) -> pthread_t
(** No attributes: user threads share the scheduler's one configuration. *)

val pthread_join : pthread_t -> unit
val pthread_yield : unit -> unit
val pthread_exit : unit -> unit
(** Cooperative model: returns to the scheduler; the calling closure must
    unwind itself afterwards (structured bodies simply return instead). *)

val pthread_mutex_init : unit -> pthread_mutex_t
val pthread_mutex_lock : pthread_mutex_t -> unit
val pthread_mutex_trylock : pthread_mutex_t -> bool
val pthread_mutex_unlock : pthread_mutex_t -> unit

val pthread_cond_init : unit -> pthread_cond_t
val pthread_cond_wait : pthread_cond_t -> pthread_mutex_t -> unit
val pthread_cond_signal : pthread_cond_t -> unit
val pthread_cond_broadcast : pthread_cond_t -> unit
