type pthread_t = Uthread.t
type pthread_mutex_t = Uthread.Mutex.mutex
type pthread_cond_t = Uthread.Condvar.condvar

let pthread_create f = Uthread.spawn f
let pthread_join t = Uthread.join t
let pthread_yield () = Uthread.yield ()

(* In the cooperative model "exit" is just a final reschedule; a body that
   wants to stop simply returns. *)
let pthread_exit () = Uthread.yield ()

let pthread_mutex_init () = Uthread.Mutex.create ()
let pthread_mutex_lock = Uthread.Mutex.lock
let pthread_mutex_trylock = Uthread.Mutex.try_lock
let pthread_mutex_unlock = Uthread.Mutex.unlock
let pthread_cond_init () = Uthread.Condvar.create ()
let pthread_cond_wait = Uthread.Condvar.wait
let pthread_cond_signal = Uthread.Condvar.signal
let pthread_cond_broadcast = Uthread.Condvar.broadcast
