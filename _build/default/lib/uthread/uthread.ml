open Effect
open Effect.Deep

exception Deadlock of string

type t = {
  id : int;
  mutable done_ : bool;
  mutable joiners : (unit -> unit) list;  (* resumers waiting in join *)
}

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Suspend park] captures the current continuation as a resumer
            thunk and hands it to [park]; the thread continues when the
            resumer is called (typically after being queued). *)
  | Spawn : (unit -> unit) -> t Effect.t

(* Scheduler state: one global M:1 scheduler, re-entered per [run]. *)
type sched = {
  runq : (unit -> unit) Queue.t;
  mutable live : int;  (* threads not yet finished *)
  mutable next_id : int;
  mutable current : t;
}

let active : sched option ref = ref None

let scheduler () =
  match !active with
  | Some s -> s
  | None -> invalid_arg "Uthread: operation outside Uthread.run"

let enqueue s thunk = Queue.push thunk s.runq

let finish s (thread : t) =
  thread.done_ <- true;
  s.live <- s.live - 1;
  (* A resumer enqueues its continuation when called. *)
  List.iter (fun resume -> resume ()) (List.rev thread.joiners);
  thread.joiners <- []

(* Run [f] as thread [thread] under the scheduler's handler. *)
let rec exec s (thread : t) f =
  s.current <- thread;
  match_with f ()
    {
      retc = (fun () -> finish s thread; next s);
      exnc =
        (fun exn ->
          (* A thread dying with an exception tears the whole run down:
             losing exceptions silently would hide bugs. *)
          finish s thread;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend park ->
              Some
                (fun (k : (a, _) continuation) ->
                  park (fun () ->
                      enqueue s (fun () ->
                          s.current <- thread;
                          continue k ()));
                  next s)
          | Spawn f ->
              Some
                (fun (k : (a, _) continuation) ->
                  let child = { id = s.next_id; done_ = false; joiners = [] } in
                  s.next_id <- s.next_id + 1;
                  s.live <- s.live + 1;
                  enqueue s (fun () -> exec s child f);
                  s.current <- thread;
                  continue k child)
          | _ -> None);
    }

and next s =
  match Queue.take_opt s.runq with
  | Some thunk -> thunk ()
  | None ->
      if s.live > 0 then
        raise (Deadlock (Printf.sprintf "%d thread(s) blocked forever" s.live))

let run main =
  if !active <> None then invalid_arg "Uthread.run: nested run";
  let main_thread = { id = 0; done_ = false; joiners = [] } in
  let s = { runq = Queue.create (); live = 1; next_id = 1; current = main_thread } in
  active := Some s;
  Fun.protect ~finally:(fun () -> active := None) (fun () -> exec s main_thread main)

let spawn f = perform (Spawn f)
let yield () = perform (Suspend (fun resume -> resume ()))

let join (thread : t) =
  if not thread.done_ then
    perform (Suspend (fun resume -> thread.joiners <- resume :: thread.joiners))

let finished (thread : t) = thread.done_
let self_id () = (scheduler ()).current.id

module Mutex = struct
  type mutex = { mutable locked : bool; waiters : (unit -> unit) Queue.t }

  let create () = { locked = false; waiters = Queue.create () }

  let lock m =
    if m.locked then perform (Suspend (fun resume -> Queue.push resume m.waiters))
    else m.locked <- true

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Uthread.Mutex.unlock: not locked";
    match Queue.take_opt m.waiters with
    | Some resume ->
        (* Hand the lock directly to the next waiter (it skips the locked
           check on resume), then let it run at its queue position. *)
        resume ()
    | None -> m.locked <- false

  let with_lock m f =
    lock m;
    Fun.protect ~finally:(fun () -> unlock m) f
end

module Condvar = struct
  type condvar = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let wait cv (m : Mutex.mutex) =
    (* Atomic in the M:1 world: no other thread runs between the unlock and
       the suspend because suspension happens inside one effect. *)
    perform
      (Suspend
         (fun resume ->
           Queue.push resume cv.waiters;
           Mutex.unlock m));
    Mutex.lock m

  let signal cv = match Queue.take_opt cv.waiters with Some r -> r () | None -> ()

  let broadcast cv =
    let rec go () =
      match Queue.take_opt cv.waiters with
      | Some r ->
          r ();
          go ()
      | None -> ()
    in
    go ()
end
