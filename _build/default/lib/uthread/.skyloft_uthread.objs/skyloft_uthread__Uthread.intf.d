lib/uthread/uthread.mli:
