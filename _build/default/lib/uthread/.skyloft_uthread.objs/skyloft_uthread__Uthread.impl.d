lib/uthread/uthread.ml: Effect Fun List Printf Queue
