lib/uthread/pthread_compat.ml: Uthread
