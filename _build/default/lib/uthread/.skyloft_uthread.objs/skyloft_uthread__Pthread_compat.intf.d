lib/uthread/pthread_compat.mli:
