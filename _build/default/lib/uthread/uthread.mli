(** Real user-level threads on OCaml 5 effect handlers.

    This is the live counterpart of the simulated LibOS: an M:1
    cooperative threading runtime whose spawn/yield/join cost no kernel
    involvement at all — the property Table 7 quantifies (37 ns yields vs
    898 ns for pthreads on the paper's hardware).  The Table 7 benchmark
    measures these operations with Bechamel; the examples use them to run
    real closures under Skyloft-style scheduling.

    Preemption is cooperative only: a GC'd runtime cannot take a user
    interrupt mid-increment, which is precisely why the simulation models
    preemption in virtual time (see DESIGN.md).  All operations must be
    called from inside [run]. *)

type t
(** A thread handle. *)

val run : (unit -> unit) -> unit
(** [run main] executes [main] as the first thread and schedules spawned
    threads round-robin until every thread has finished.  Nested [run]s
    are not allowed. *)

val spawn : (unit -> unit) -> t
(** Create a runnable thread.  It first runs at the spawner's next yield
    point. *)

val yield : unit -> unit
(** Reschedule: put the current thread at the tail of the run queue and
    run the next one. *)

val join : t -> unit
(** Block until the thread finishes.  Immediate if it already has. *)

val finished : t -> bool

val self_id : unit -> int
(** Dense id of the running thread (0 is the [run] main thread). *)

exception Deadlock of string
(** Raised by [run] when threads remain but none is runnable. *)

(** Mutual exclusion with a FIFO wait queue. *)
module Mutex : sig
  type mutex

  val create : unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit
  (** Raises [Invalid_argument] if the lock is not held. *)

  val try_lock : mutex -> bool
  val with_lock : mutex -> (unit -> 'a) -> 'a
end

(** Condition variables (always used with a {!Mutex.mutex}). *)
module Condvar : sig
  type condvar

  val create : unit -> condvar
  val wait : condvar -> Mutex.mutex -> unit
  (** Atomically release the mutex and sleep; re-acquires before
      returning. *)

  val signal : condvar -> unit
  (** Wake one waiter (no-op when none). *)

  val broadcast : condvar -> unit
end
