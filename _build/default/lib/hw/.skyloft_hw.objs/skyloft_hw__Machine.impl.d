lib/hw/machine.ml: Array Costs Int64 List Skyloft_sim Topology Vectors
