lib/hw/machine.mli: Skyloft_sim Topology
