lib/hw/uitt.mli: Machine
