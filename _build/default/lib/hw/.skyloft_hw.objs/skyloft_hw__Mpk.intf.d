lib/hw/mpk.mli:
