lib/hw/vectors.mli: Format
