lib/hw/vectors.ml: Format
