lib/hw/costs.mli: Skyloft_sim
