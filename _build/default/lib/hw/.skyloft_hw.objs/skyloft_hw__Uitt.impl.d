lib/hw/uitt.ml: Array Machine
