lib/hw/costs.ml: Skyloft_sim
