lib/hw/mpk.ml: Array Fun Printf
