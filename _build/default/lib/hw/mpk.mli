(** Intel Memory Protection Keys model (§6, "Shared memory protection").

    Skyloft's shared runqueues and task metadata live in memory mapped into
    every scheduled application, so a buggy or malicious application could
    scribble over scheduling state.  The paper's proposed mitigation is
    MPK: tag the shared region with a protection key, keep the key revoked
    in application code, and have a guardian grant access only inside the
    scheduler entry points.

    This module models the architectural pieces: 16 protection keys, a
    per-core PKRU register with access-disable/write-disable bits, tagged
    regions, and the WRPKRU instruction.  Checked accesses raise
    {!Protection_fault} exactly where real hardware would deliver a #PF. *)

exception Protection_fault of string

type pkey = int
(** Protection key, 0..15.  Key 0 is conventionally "no restriction". *)

type t
(** MPK state for one machine (per-core PKRU array + region table). *)

type region
(** A tagged memory region (identified, not byte-addressed: the simulation
    cares about which logical object is touched, not its address). *)

val create : cores:int -> t
(** All PKRU registers start fully permissive, like the reset state. *)

val fresh_pkey : t -> pkey
(** Allocate the next unused key (pkey_alloc).  Raises [Invalid_argument]
    when all 15 allocatable keys are taken. *)

val tag_region : t -> name:string -> pkey -> region
(** Associate a named region with a key (pkey_mprotect). *)

val wrpkru : t -> core:int -> pkey -> allow_read:bool -> allow_write:bool -> unit
(** Set the access bits for [pkey] on [core]'s PKRU. *)

val read : t -> core:int -> region -> unit
(** Checked read: raises {!Protection_fault} if the region's key has
    access-disable set on this core. *)

val write : t -> core:int -> region -> unit
(** Checked write: raises {!Protection_fault} if access- or write-disable
    is set. *)

val with_guardian : t -> core:int -> pkey -> (unit -> 'a) -> 'a
(** The guardian pattern from §6: grant read/write for [pkey], run [f]
    (the scheduler entry), then revoke both — even on exceptions.  Nesting
    is safe; the previous permission is restored. *)

val wrpkru_cycles : int
(** Cost of one WRPKRU (~20 cycles measured on real hardware); charged by
    callers that account guardian crossings. *)
