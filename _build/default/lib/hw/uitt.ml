type entry = { ctx : Machine.uintr_ctx; uvec : int }

type t = { machine : Machine.t; entries : entry option array }

let create machine ~size =
  if size <= 0 then invalid_arg "Uitt.create: size must be positive";
  { machine; entries = Array.make size None }

let check t i =
  if i < 0 || i >= Array.length t.entries then invalid_arg "Uitt: index out of range"

let set t i ctx ~uvec =
  check t i;
  t.entries.(i) <- Some { ctx; uvec }

let clear t i =
  check t i;
  t.entries.(i) <- None

let size t = Array.length t.entries

let senduipi t ~src_core i =
  check t i;
  match t.entries.(i) with
  | None -> invalid_arg "Uitt.senduipi: empty UITT entry (#GP)"
  | Some { ctx; uvec } -> Machine.senduipi t.machine ~src_core ctx ~uvec
