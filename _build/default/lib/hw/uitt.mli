(** User-Interrupt Target Table: the sender-side UINTR structure.

    Each sender thread owns a UITT; entry [i] names a receiver's UPID plus
    the user-vector to post.  [SENDUIPI i] posts that vector to that
    receiver (§3.2).  In Skyloft the dispatcher builds one entry per worker
    core at startup. *)

type t

val create : Machine.t -> size:int -> t
(** A table with [size] empty slots. *)

val set : t -> int -> Machine.uintr_ctx -> uvec:int -> unit
(** Fill entry [i] with the receiver context and the user-vector to post. *)

val clear : t -> int -> unit
val size : t -> int

val senduipi : t -> src_core:int -> int -> unit
(** Execute SENDUIPI with operand [i]: posts the entry's user vector into
    the receiver's PIR and, unless the receiver's SN bit is set, sends the
    notification IPI.  Raises [Invalid_argument] on an empty slot, matching
    the #GP a real SENDUIPI raises on an invalid UITT index. *)
