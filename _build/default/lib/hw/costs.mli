module Time = Skyloft_sim.Time

(** Mechanism cost model.

    Every latency used by the simulation is composed here from named
    micro-costs (syscall entry/exit, APIC ICR write, UPID posting, interrupt
    ring switches, signal frames, ...).  The compositions reproduce the
    paper's Table 6 ("Preemption mechanism comparison") and the §5.4
    microbenchmarks; the same micro-costs drive the figure-level experiments,
    so the figures inherit their shape from the mechanism model validated by
    the tables.

    All values are in cycles unless the name says [_ns]; the machine runs at
    2.0 GHz so 1 cycle = 0.5 ns ({!Skyloft_sim.Time.of_cycles}). *)

(** {1 Micro-costs (cycles)} *)

val syscall_entry : int
val syscall_exit : int

val apic_icr_write : int
(** x2APIC ICR MSR write to trigger an IPI. *)

val upid_post : int
(** UITT lookup + locked OR of the vector bit into the target UPID.PIR. *)

val remote_upid_touch : int
(** Extra sender cost when the target UPID cacheline lives on another
    socket. *)

val remote_cacheline : int
(** Receiver-side cross-socket cacheline transfer (reading a PIR written on
    the other socket). *)

val ipi_wire_same_socket : int
(** Core-to-core IPI propagation latency, same socket. *)

val ipi_wire_cross_socket : int

val uintr_recognition : int
(** Hardware moving PIR bits into UIRR when the notification arrives and the
    PIR was written remotely. *)

val uintr_recognition_local : int
(** Same, when the PIR was posted by the local core (user timer delegation:
    the self-posted PIR line is already in L1 — this is why receiving a user
    timer interrupt is slightly cheaper than receiving a user IPI). *)

val uintr_ctx_save : int
(** Hardware push of RIP/RSP/RFLAGS and jump to the UIHANDLER. *)

val uintr_ctx_restore : int
(** UIRET. *)

val kernel_intr_entry : int
(** CPL3 -> CPL0 transition plus vector dispatch. *)

val kernel_intr_exit : int
(** IRET back to user mode. *)

val irq_ack : int
(** EOI write plus generic kernel IRQ bookkeeping. *)

val vector_dispatch : int
(** IDT vectoring cost counted in delivery, before the handler body. *)

val signal_post : int
(** kill()/tgkill() kernel path: task lookup, sigpending update, locking. *)

val signal_dequeue : int
(** Return-to-user path that notices and dequeues a pending signal. *)

val signal_frame_setup : int
(** Building the user-space signal frame. *)

val sigreturn : int
(** The sigreturn syscall restoring the interrupted context. *)

val timer_irq_path : int
(** Kernel LAPIC-timer IRQ handler body (setitimer path). *)

val senduipi_sn : int
(** SENDUIPI with UPID.SN set: posts to PIR without generating an IPI.
    Used inside the user timer-interrupt handler to re-arm delegation
    (§3.2); the paper measures ~123 cycles (§5.4). *)

val lapic_timer_program : int
(** Writing the LAPIC initial-count / deadline register. *)

(** {1 Composed mechanisms (Table 6)} *)

type mechanism = {
  name : string;
  send : int option;  (** sender-side cycles; [None] for local timers *)
  receive : int;  (** receiver-side handling cycles, save + handler + restore *)
  delivery : int option;
      (** cycles from send to handler entry; [None] for local timers *)
}

val signal : mechanism
val kernel_ipi : mechanism
val user_ipi : mechanism
val user_ipi_cross_numa : mechanism
val setitimer : mechanism
val user_timer : mechanism

val table6 : mechanism list
(** All six rows, in the paper's order. *)

val paper_table6 : (string * int option * int * int option) list
(** The numbers printed in the paper, for side-by-side reporting. *)

(** {1 Thread and scheduler operation costs (§5.4, Table 7)} *)

val uthread_yield_ns : Time.t
val uthread_spawn_ns : Time.t
val uthread_mutex_ns : Time.t
val uthread_condvar_ns : Time.t

val app_switch_ns : Time.t
(** Skyloft inter-application switch through the kernel module (§5.4:
    1,905 ns). *)

val linux_ctx_switch_ns : Time.t
(** Linux kernel-thread switch, both runnable (§5.4: 1,124 ns). *)

val linux_wakeup_switch_ns : Time.t
(** Linux switch requiring a wakeup (§5.4: 2,471 ns). *)

val pthread_ops_ns : (string * Time.t) list
val go_ops_ns : (string * Time.t) list
val skyloft_ops_ns : (string * Time.t) list
(** Table 7 model columns: yield / spawn / mutex / condvar. *)

(** {1 Derived simulation charges (ns)} *)

val uipi_send_ns : cross_numa:bool -> Time.t
val uipi_delivery_ns : cross_numa:bool -> Time.t
val uipi_receive_ns : cross_numa:bool -> Time.t
val user_timer_receive_ns : Time.t
val senduipi_sn_ns : Time.t
val signal_send_ns : Time.t
val signal_delivery_ns : Time.t
val signal_receive_ns : Time.t
val kipi_send_ns : Time.t
val kipi_delivery_ns : Time.t
val kipi_receive_ns : Time.t
val setitimer_receive_ns : Time.t
val kernel_tick_ns : Time.t
(** Cost of one Linux scheduler tick in the kernel (irq + sched path). *)
