type t = { sockets : int; cores_per_socket : int }

let create ~sockets ~cores_per_socket =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Topology.create: sockets and cores_per_socket must be positive";
  { sockets; cores_per_socket }

let paper_server = { sockets = 2; cores_per_socket = 24 }
let total_cores t = t.sockets * t.cores_per_socket

let valid_core t core = core >= 0 && core < total_cores t

let socket_of_core t core =
  if not (valid_core t core) then invalid_arg "Topology.socket_of_core: bad core id";
  core / t.cores_per_socket

let cross_numa t a b = socket_of_core t a <> socket_of_core t b

let pp ppf t =
  Format.fprintf ppf "%d socket(s) x %d cores = %d cores" t.sockets t.cores_per_socket
    (total_cores t)
