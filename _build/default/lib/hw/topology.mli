(** Machine topology: sockets, cores, NUMA distance.

    The paper's server is a dual-socket Sapphire Rapids machine with 24
    physical cores per socket at 2.0 GHz (§5, experimental setup);
    [paper_server] reproduces it.  Core ids are dense in
    [\[0, total_cores)], assigned socket-major. *)

type t = { sockets : int; cores_per_socket : int }

val create : sockets:int -> cores_per_socket:int -> t
(** Both arguments must be positive. *)

val paper_server : t
(** 2 sockets x 24 cores, as in the evaluation. *)

val total_cores : t -> int
val socket_of_core : t -> int -> int

val cross_numa : t -> int -> int -> bool
(** Whether two cores live on different sockets (different NUMA nodes). *)

val valid_core : t -> int -> bool
val pp : Format.formatter -> t -> unit
