exception Protection_fault of string

type pkey = int

type perm = { mutable ad : bool; mutable wd : bool }  (* access/write disable *)

type t = {
  pkru : perm array array;  (* core -> pkey -> bits *)
  mutable next_key : int;
}

type region = { name : string; key : pkey }

let n_keys = 16

let create ~cores =
  if cores <= 0 then invalid_arg "Mpk.create: cores must be positive";
  {
    pkru = Array.init cores (fun _ -> Array.init n_keys (fun _ -> { ad = false; wd = false }));
    next_key = 1;
  }

let fresh_pkey t =
  if t.next_key >= n_keys then invalid_arg "Mpk.fresh_pkey: out of protection keys";
  let key = t.next_key in
  t.next_key <- t.next_key + 1;
  key

let check_key t key =
  if key < 0 || key >= n_keys then invalid_arg "Mpk: pkey out of range";
  ignore t

let tag_region t ~name key =
  check_key t key;
  { name; key }

let perm t ~core key =
  if core < 0 || core >= Array.length t.pkru then invalid_arg "Mpk: bad core";
  t.pkru.(core).(key)

let wrpkru t ~core key ~allow_read ~allow_write =
  check_key t key;
  let p = perm t ~core key in
  p.ad <- not allow_read;
  p.wd <- not allow_write

let read t ~core region =
  let p = perm t ~core region.key in
  if p.ad then
    raise
      (Protection_fault
         (Printf.sprintf "read of %s (pkey %d) with access disabled on core %d"
            region.name region.key core))

let write t ~core region =
  let p = perm t ~core region.key in
  if p.ad || p.wd then
    raise
      (Protection_fault
         (Printf.sprintf "write to %s (pkey %d) with %s disabled on core %d" region.name
            region.key
            (if p.ad then "access" else "write")
            core))

let with_guardian t ~core key f =
  let p = perm t ~core key in
  let saved_ad = p.ad and saved_wd = p.wd in
  p.ad <- false;
  p.wd <- false;
  Fun.protect
    ~finally:(fun () ->
      p.ad <- saved_ad;
      p.wd <- saved_wd)
    f

let wrpkru_cycles = 20
