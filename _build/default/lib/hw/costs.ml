module Time = Skyloft_sim.Time

(* Micro-costs, in cycles at 2.0 GHz.  Calibrated so the composed mechanisms
   land on the paper's Table 6 within a few percent; see costs.mli. *)

let syscall_entry = 90
let syscall_exit = 140
let apic_icr_write = 120
let upid_post = 47
let remote_upid_touch = 11
let remote_cacheline = 220
let ipi_wire_same_socket = 860
let ipi_wire_cross_socket = 1210
let uintr_recognition = 100
let uintr_recognition_local = 82
let uintr_ctx_save = 250
let uintr_ctx_restore = 310
let kernel_intr_entry = 450
let kernel_intr_exit = 730
let irq_ack = 400
let vector_dispatch = 35
let signal_post = 870
let signal_dequeue = 1460
let signal_frame_setup = 2100
let sigreturn = 2680
let timer_irq_path = 300
let senduipi_sn = upid_post + 76
let lapic_timer_program = 60

type mechanism = {
  name : string;
  send : int option;
  receive : int;
  delivery : int option;
}

let signal =
  {
    name = "Signal";
    send = Some (syscall_entry + signal_post + apic_icr_write + syscall_exit);
    receive =
      kernel_intr_entry + irq_ack + signal_frame_setup + sigreturn + kernel_intr_exit;
    delivery =
      Some (ipi_wire_same_socket + kernel_intr_entry + irq_ack + signal_dequeue
           + signal_frame_setup);
  }

let kernel_ipi =
  {
    name = "Kernel IPI";
    send = Some (syscall_entry + syscall_entry + apic_icr_write + syscall_exit);
    receive = kernel_intr_entry + irq_ack + kernel_intr_exit;
    delivery = Some (ipi_wire_same_socket + kernel_intr_entry + vector_dispatch);
  }

let user_ipi =
  {
    name = "User IPI";
    send = Some (upid_post + apic_icr_write);
    receive = uintr_recognition + uintr_ctx_save + uintr_ctx_restore;
    delivery = Some (ipi_wire_same_socket + uintr_recognition + uintr_ctx_save);
  }

let user_ipi_cross_numa =
  {
    name = "User IPI (cross NUMA nodes)";
    send = Some (upid_post + apic_icr_write + remote_upid_touch);
    receive = uintr_recognition + uintr_ctx_save + uintr_ctx_restore + remote_cacheline;
    delivery =
      Some
        (ipi_wire_cross_socket + uintr_recognition + uintr_ctx_save + remote_cacheline);
  }

let setitimer =
  {
    name = "setitimer";
    send = None;
    receive = kernel_intr_entry + timer_irq_path + signal_frame_setup + sigreturn;
    delivery = None;
  }

let user_timer =
  {
    name = "User timer interrupt";
    send = None;
    receive = uintr_recognition_local + uintr_ctx_save + uintr_ctx_restore;
    delivery = None;
  }

let table6 = [ signal; kernel_ipi; user_ipi; user_ipi_cross_numa; setitimer; user_timer ]

let paper_table6 =
  [
    ("Signal", Some 1224, 6359, Some 5274);
    ("Kernel IPI", Some 437, 1582, Some 1345);
    ("User IPI", Some 167, 661, Some 1211);
    ("User IPI (cross NUMA nodes)", Some 178, 883, Some 1782);
    ("setitimer", None, 5057, None);
    ("User timer interrupt", None, 642, None);
  ]

(* Table 7 (ns). *)
let uthread_yield_ns = 37
let uthread_spawn_ns = 191
let uthread_mutex_ns = 27
let uthread_condvar_ns = 86
let app_switch_ns = 1_905
let linux_ctx_switch_ns = 1_124
let linux_wakeup_switch_ns = 2_471

let pthread_ops_ns =
  [ ("Yield", 898); ("Spawn", 15_418); ("Mutex", 28); ("Condvar", 2_532) ]

let go_ops_ns = [ ("Yield", 108); ("Spawn", 503); ("Mutex", 25); ("Condvar", 262) ]

let skyloft_ops_ns =
  [
    ("Yield", uthread_yield_ns);
    ("Spawn", uthread_spawn_ns);
    ("Mutex", uthread_mutex_ns);
    ("Condvar", uthread_condvar_ns);
  ]

let cyc = Time.of_cycles
let get = function Some x -> x | None -> 0

let uipi_send_ns ~cross_numa =
  cyc (get (if cross_numa then user_ipi_cross_numa.send else user_ipi.send))

let uipi_delivery_ns ~cross_numa =
  cyc (get (if cross_numa then user_ipi_cross_numa.delivery else user_ipi.delivery))

let uipi_receive_ns ~cross_numa =
  cyc (if cross_numa then user_ipi_cross_numa.receive else user_ipi.receive)

let user_timer_receive_ns = cyc user_timer.receive
let senduipi_sn_ns = cyc senduipi_sn
let signal_send_ns = cyc (get signal.send)
let signal_delivery_ns = cyc (get signal.delivery)
let signal_receive_ns = cyc signal.receive
let kipi_send_ns = cyc (get kernel_ipi.send)
let kipi_delivery_ns = cyc (get kernel_ipi.delivery)
let kipi_receive_ns = cyc kernel_ipi.receive
let setitimer_receive_ns = cyc setitimer.receive

(* A Linux scheduler tick: interrupt entry/exit + timer IRQ + scheduler
   bookkeeping (update_curr and friends, roughly the irq-ack budget). *)
let kernel_tick_ns = cyc (kernel_intr_entry + timer_irq_path + irq_ack + kernel_intr_exit)
