(** Interrupt vector numbers of the simulated machine, mirroring the x86
    layout, plus the 0-63 user-interrupt request indices Skyloft posts
    into the PIR. *)

type t = int

val timer : t
(** LAPIC timer vector. *)

val uintr_notification : t
(** UINTR notification vector (default UINV for user IPIs). *)

val resched : t
(** Kernel reschedule IPI. *)

val signal : t
(** Signal-delivery IPI (Shenango-style preemption). *)

val uvec_timer : int
(** User-vector index for delegated timer interrupts. *)

val uvec_preempt : int
(** User-vector index for preemption IPIs. *)

val uvec_nic : int
(** User-vector index for delegated NIC interrupts (§6 extension). *)

val pp : Format.formatter -> t -> unit
