(** Interrupt vector numbers used by the simulated machine.

    The actual values only need to be distinct; they mirror the x86 layout
    where the LAPIC timer and the UINTR notification vector are high
    platform vectors. *)

type t = int

(* LAPIC timer vector (Linux uses 0xec). *)
let timer : t = 0xec

(* UINTR notification vector used for user IPIs (the UINV value a receiver
   configures when it only expects SENDUIPI-generated interrupts). *)
let uintr_notification : t = 0xe5

(* Kernel reschedule IPI (preemption via the kernel, ghOSt-style). *)
let resched : t = 0xfd

(* Signal-delivery IPI (Shenango-style preemption). *)
let signal : t = 0xf8

(* User-interrupt *request* numbers (the 0-63 index posted into the PIR) are
   a separate small space; by convention Skyloft uses: *)
let uvec_preempt = 1
let uvec_timer = 0

(* User-delegated NIC MSI (the §6 "peripheral interrupts" extension). *)
let uvec_nic = 2

let pp ppf (v : t) =
  let name =
    if v = timer then "timer"
    else if v = uintr_notification then "uintr"
    else if v = resched then "resched"
    else if v = signal then "signal"
    else "vec"
  in
  Format.fprintf ppf "%s(0x%x)" name v
