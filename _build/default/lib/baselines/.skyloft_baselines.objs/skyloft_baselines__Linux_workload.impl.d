lib/baselines/linux_workload.ml: List Printf Queue Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_sim Skyloft_stats
