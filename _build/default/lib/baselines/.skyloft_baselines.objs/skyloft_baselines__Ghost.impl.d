lib/baselines/ghost.ml: Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim
