lib/baselines/linux_workload.mli: Skyloft_hw Skyloft_sim Skyloft_stats
