lib/baselines/ghost.mli: Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim
