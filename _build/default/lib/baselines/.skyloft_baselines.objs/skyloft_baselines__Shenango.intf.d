lib/baselines/shenango.mli: Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim
