lib/baselines/shenango.ml: Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim
