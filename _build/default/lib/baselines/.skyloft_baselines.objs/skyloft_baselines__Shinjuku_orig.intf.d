lib/baselines/shinjuku_orig.mli: Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim
