lib/baselines/shinjuku_orig.ml: Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim
