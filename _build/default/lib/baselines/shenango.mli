module Time = Skyloft_sim.Time

(** Shenango model (§5.3 comparator): cooperative work stealing with
    IOKernel-style core parking — no µs-scale preemption within an
    application (the Figure 8b failure mode) and a kernel wakeup to
    re-engage a parked core (the Figure 8a low-load penalty). *)

val park_idle_after : Time.t
val park_resume_cost : Time.t

val make :
  Skyloft_hw.Machine.t -> Skyloft_kernel.Kmod.t -> cores:int list -> Skyloft.Percpu.t
