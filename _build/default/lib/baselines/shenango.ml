module Time = Skyloft_sim.Time
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu

(** Shenango model (§5.3 comparator).

    Shenango is a user-level runtime with cooperative work stealing and an
    IOKernel that reallocates cores between applications every ~5 µs.  Two
    properties matter for the paper's comparison:

    - {e no µs-scale preemption within an application}: a 591 µs SCAN
      holds its core until it finishes, so heavy-tailed workloads blow
      through slowdown SLOs early (Figure 8b);
    - {e core parking}: idle cores are yielded back to the IOKernel, so a
      burst that needs the core back pays a kernel wakeup — the small
      low-load tail-latency penalty visible in Figure 8a.

    Both are configuration, not new machinery: work stealing without a
    quantum, plus the runtime's park option. *)

let park_idle_after = Time.us 5
(* Re-adding a core goes through the IOKernel and a kernel wakeup. *)
let park_resume_cost = Costs.linux_wakeup_switch_ns + Time.us 1

let make machine kmod ~cores =
  Percpu.create machine kmod ~cores ~preemption:false
    ~park:(park_idle_after, park_resume_cost)
    (Skyloft_policies.Work_stealing.create ())
