module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Summary = Skyloft_stats.Summary

(** The Linux-CFS baseline of Figure 7a: a request stream served by a
    pool of kernel threads (2× cores by default) pulling from a shared
    FIFO under the simulated CFS.  Optionally co-locates nice-19 batch
    hog threads (Figure 7c's Linux line). *)

type t

val run :
  Skyloft_hw.Machine.t ->
  cores:int list ->
  rng:Rng.t ->
  rate_rps:float ->
  service:Dist.t ->
  duration:Time.t ->
  ?pool_factor:int ->
  ?batch_threads:int ->
  unit ->
  t

val summary : t -> Summary.t
val served : t -> int
val served_in_window : t -> int
(** Completions before the arrival cutoff (honest throughput under
    overload). *)

val offered : t -> int
val batch_busy_ns : t -> int
