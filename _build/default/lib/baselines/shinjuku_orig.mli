module Time = Skyloft_sim.Time

(** Original Shinjuku model (§5.2 comparator): Dune posted-interrupt
    preemption over a dedicated-dispatcher global queue.  Costs are a
    small multiple of user IPIs — hence near-parity with Skyloft in
    Figure 7a — but cores are dedicated to one application, so its batch
    share in Figure 7c is identically zero (never attach a BE app). *)

val make :
  Skyloft_hw.Machine.t ->
  Skyloft_kernel.Kmod.t ->
  dispatcher_core:int ->
  worker_cores:int list ->
  quantum:Time.t ->
  Skyloft.Sched_ops.ctor ->
  Skyloft.Centralized.t
