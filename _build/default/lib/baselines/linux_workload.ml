module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Linux = Skyloft_kernel.Linux
module Kthread = Skyloft_kernel.Kthread
module Summary = Skyloft_stats.Summary
module Loadgen = Skyloft_net.Loadgen
module Packet = Skyloft_net.Packet

(** The Linux-CFS baseline of Figure 7a: the same dispersive request stream
    served by a pool of kernel threads under the simulated Linux scheduler.

    Requests land in a shared FIFO; a pool of worker kthreads (2x cores, as
    a typical thread-per-core-times-two server configuration) pulls from
    it, blocking when it runs dry.  CFS gives every runnable worker a fair
    share, which is exactly the problem: a worker chewing a 10 ms request
    keeps its core for a min_granularity at a time while short requests
    queue behind the thundering herd, and every block/wake round-trip pays
    kernel wakeup costs.  No preemption quantum exists at µs scale, so the
    maximum throughput stalls well below the kernel-bypass systems. *)

type t = {
  summary : Summary.t;
  mutable offered : int;
  mutable served : int;
  mutable served_in_window : int;  (* completions before the arrival cutoff *)
  mutable batch_busy_ns : int;
}

let run machine ~cores ~rng ~rate_rps ~service ~duration ?(pool_factor = 2)
    ?(batch_threads = 0) () =
  let engine = Machine.engine machine in
  let linux = Linux.create machine Linux.cfs_default ~cores in
  let t =
    { summary = Summary.create (); offered = 0; served = 0; served_in_window = 0;
      batch_busy_ns = 0 }
  in
  let queue : Packet.t Queue.t = Queue.create () in
  let idle_workers : Kthread.t Queue.t = Queue.create () in
  let stop_at = Engine.now engine + duration in
  let rec worker_body self () =
    match Queue.take_opt queue with
    | Some pkt ->
        Coro.Compute
          ( pkt.Packet.service,
            fun () ->
              t.served <- t.served + 1;
              if Engine.now engine <= stop_at then
                t.served_in_window <- t.served_in_window + 1;
              Summary.record_request t.summary ~arrival:pkt.Packet.arrival
                ~completion:(Engine.now engine) ~service:pkt.Packet.service;
              worker_body self () )
    | None ->
        if Engine.now engine >= stop_at then Coro.Exit
        else begin
          (match !self with Some kt -> Queue.push kt idle_workers | None -> ());
          Coro.Block (fun () -> worker_body self ())
        end
  in
  let n_workers = pool_factor * List.length cores in
  for i = 1 to n_workers do
    let self = ref None in
    (* The body is evaluated eagerly, before the kthread handle exists, so
       register the initial idleness here rather than inside the body. *)
    let kt = Linux.spawn linux ~name:(Printf.sprintf "pool-%d" i) (worker_body self ()) in
    self := Some kt;
    Queue.push kt idle_workers
  done;
  (* Co-located batch hogs (Figure 7c's Linux line): plain CFS threads
     burning CPU in small chunks; their completed chunk time is the batch
     application's share. *)
  let batch_chunk = Time.us 50 in
  for i = 1 to batch_threads do
    let rec hog () =
      Coro.Compute
        ( batch_chunk,
          fun () ->
            t.batch_busy_ns <- t.batch_busy_ns + batch_chunk;
            if Engine.now engine >= stop_at then Coro.Exit else hog () )
    in
    (* nice 19: the batch job must not displace the latency-critical pool *)
    ignore (Linux.spawn linux ~name:(Printf.sprintf "batch-%d" i) ~weight:15 (hog ()))
  done;
  Loadgen.poisson engine ~rng ~rate_rps ~service ~duration (fun pkt ->
      t.offered <- t.offered + 1;
      Queue.push pkt queue;
      match Queue.take_opt idle_workers with
      | Some kt -> Linux.wakeup linux kt
      | None -> ());
  (* leave drain time after the last arrival *)
  Engine.run ~until:(stop_at + Time.ms 50) engine;
  t

let summary t = t.summary
let served t = t.served
let served_in_window t = t.served_in_window
let offered t = t.offered
let batch_busy_ns t = t.batch_busy_ns
