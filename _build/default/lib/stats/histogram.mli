(** Log-linear latency histogram (HdrHistogram-style).

    Values are non-negative integers (nanoseconds in this repository).
    Buckets are arranged as 64 power-of-two ranges split into
    [sub_buckets] linear sub-buckets each, giving a worst-case relative
    error of [1/sub_buckets] — ~1.6% at the default 64, far below the
    run-to-run noise of any scheduling experiment.  Recording is O(1) and
    allocation-free after creation. *)

type t

val create : ?sub_buckets:int -> unit -> t
(** [sub_buckets] must be a power of two (default 64). *)

val record : t -> int -> unit
(** Record one value.  Negative values raise [Invalid_argument]. *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times. *)

val count : t -> int
val is_empty : t -> bool
val min_value : t -> int
(** Smallest recorded value (exact).  0 when empty. *)

val max_value : t -> int
(** Largest recorded value (exact).  0 when empty. *)

val mean : t -> float
(** Approximate mean from bucket midpoints.  0 when empty. *)

val total : t -> float
(** Sum of recorded values (bucket-midpoint approximation). *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [\[0, 100\]]: smallest bucket upper bound
    such that at least [p]% of recorded values are at or below it.
    0 when empty. *)

val merge_into : src:t -> dst:t -> unit
val reset : t -> unit
val pp_summary : Format.formatter -> t -> unit
(** One-line p50/p90/p99/p99.9/max rendering in human units. *)
