lib/stats/histogram.ml: Array Format Skyloft_sim
