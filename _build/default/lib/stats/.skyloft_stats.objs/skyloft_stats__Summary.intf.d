lib/stats/summary.mli: Histogram Skyloft_sim
