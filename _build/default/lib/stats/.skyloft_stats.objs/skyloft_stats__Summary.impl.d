lib/stats/summary.ml: Histogram Skyloft_sim
