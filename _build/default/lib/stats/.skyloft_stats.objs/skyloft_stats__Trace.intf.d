lib/stats/trace.mli: Skyloft_sim
