lib/stats/trace.ml: Array Buffer Char Fun Printf Skyloft_sim String
