module Time = Skyloft_sim.Time

type t = {
  sub : int;  (* sub-buckets per power-of-two range; power of two *)
  k : int;  (* log2 sub *)
  counts : int array;
  mutable n : int;
  mutable min_v : int;
  mutable max_v : int;
}

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let create ?(sub_buckets = 64) () =
  if not (is_power_of_two sub_buckets) then
    invalid_arg "Histogram.create: sub_buckets must be a power of two";
  let k =
    let rec go k = if 1 lsl k = sub_buckets then k else go (k + 1) in
    go 0
  in
  (* Groups 1..(62-k+1) cover all positive OCaml ints; group 0 is the exact
     linear region [0, sub). *)
  let groups = 63 - k + 1 in
  {
    sub = sub_buckets;
    k;
    counts = Array.make ((groups + 1) * sub_buckets) 0;
    n = 0;
    min_v = max_int;
    max_v = 0;
  }

let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index t v =
  if v < t.sub then v
  else begin
    let m = msb v in
    let group = m - t.k + 1 in
    let s = (v lsr (group - 1)) - t.sub in
    (group * t.sub) + s
  end

(* Inclusive upper bound of the values mapping to bucket [i]. *)
let bucket_upper t i =
  if i < t.sub then i
  else begin
    let group = i / t.sub and s = i mod t.sub in
    ((t.sub + s + 1) lsl (group - 1)) - 1
  end

let bucket_mid t i =
  if i < t.sub then float_of_int i
  else begin
    let group = i / t.sub and s = i mod t.sub in
    let lower = (t.sub + s) lsl (group - 1) in
    float_of_int (lower + bucket_upper t i) /. 2.0
  end

let record_n t v ~n =
  if v < 0 then invalid_arg "Histogram.record: negative value";
  if n < 0 then invalid_arg "Histogram.record_n: negative count";
  if n > 0 then begin
    t.counts.(index t v) <- t.counts.(index t v) + n;
    t.n <- t.n + n;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1
let count t = t.n
let is_empty t = t.n = 0
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v

let total t =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> if c > 0 then acc := !acc +. (float_of_int c *. bucket_mid t i))
    t.counts;
  !acc

let mean t = if t.n = 0 then 0.0 else total t /. float_of_int t.n

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  if t.n = 0 then 0
  else begin
    let target =
      let exact = p /. 100.0 *. float_of_int t.n in
      max 1 (int_of_float (ceil exact))
    in
    let seen = ref 0 and result = ref t.max_v and found = ref false in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if (not !found) && !seen >= target then begin
             result := min (bucket_upper t i) t.max_v;
             found := true;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

let merge_into ~src ~dst =
  if src.sub <> dst.sub then invalid_arg "Histogram.merge_into: mismatched sub_buckets";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  if src.n > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d p50=%a p90=%a p99=%a p99.9=%a max=%a" t.n Time.pp
      (percentile t 50.0) Time.pp (percentile t 90.0) Time.pp (percentile t 99.0) Time.pp
      (percentile t 99.9) Time.pp (max_value t)
