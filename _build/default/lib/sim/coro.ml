type t =
  | Compute of Time.t * (unit -> t)
  | Block of (unit -> t)
  | Yield of (unit -> t)
  | Exit

let compute d k = Compute (d, k)
let block k = Block k
let yield k = Yield k
let exit' = Exit
let compute_then_exit d = Compute (d, fun () -> Exit)

let forever_compute_block d =
  let rec round () = Compute (d, fun () -> Block round) in
  round ()

let repeat n f tail =
  let rec go i = if i >= n then tail else f i (go (i + 1)) in
  go 0
