(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** implementation so that every experiment in
    the repository is reproducible from a single integer seed, independent of
    the OCaml stdlib's [Random] state.  Streams can be split ([split]) to give
    independent generators to independent simulation components (one per
    load generator, one per application, ...) without coupling their draws. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator whose whole future is determined by
    [seed].  Two generators with the same seed produce the same stream. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t].  Use one split stream per simulation component. *)

val copy : t -> t
(** Deep copy: the copy and the original produce the same future stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
val exponential : t -> mean:float -> float
(** Draw from an exponential distribution with the given mean. *)
