type t =
  | Constant of Time.t
  | Exponential of { mean : Time.t }
  | Uniform of { lo : Time.t; hi : Time.t }
  | Bimodal of { p_short : float; short : Time.t; long : Time.t }
  | Lognormal of { mu : float; sigma : float }

let clamp x = if x < 1 then 1 else x

(* Box-Muller; one draw per call is fine at simulation scale. *)
let normal rng =
  let u1 = 1.0 -. Rng.uniform rng and u2 = Rng.uniform rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let sample t rng =
  match t with
  | Constant d -> clamp d
  | Exponential { mean } ->
      clamp (int_of_float (Rng.exponential rng ~mean:(float_of_int mean)))
  | Uniform { lo; hi } ->
      if hi <= lo then clamp lo else clamp (lo + Rng.int rng (hi - lo))
  | Bimodal { p_short; short; long } ->
      if Rng.uniform rng < p_short then clamp short else clamp long
  | Lognormal { mu; sigma } ->
      clamp (int_of_float (exp (mu +. (sigma *. normal rng))))

let mean = function
  | Constant d -> float_of_int d
  | Exponential { mean } -> float_of_int mean
  | Uniform { lo; hi } -> float_of_int (lo + hi) /. 2.0
  | Bimodal { p_short; short; long } ->
      (p_short *. float_of_int short) +. ((1.0 -. p_short) *. float_of_int long)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))

let pp ppf = function
  | Constant d -> Format.fprintf ppf "const(%a)" Time.pp d
  | Exponential { mean } -> Format.fprintf ppf "exp(mean=%a)" Time.pp mean
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%a,%a)" Time.pp lo Time.pp hi
  | Bimodal { p_short; short; long } ->
      Format.fprintf ppf "bimodal(%.1f%% %a / %a)" (p_short *. 100.) Time.pp short Time.pp long
  | Lognormal { mu; sigma } -> Format.fprintf ppf "lognormal(mu=%.2f,sigma=%.2f)" mu sigma

let dispersive = Bimodal { p_short = 0.995; short = Time.us 4; long = Time.ms 10 }
let rocksdb_bimodal = Bimodal { p_short = 0.5; short = Time.ns 950; long = Time.us 591 }
let memcached_usr = Exponential { mean = Time.us 2 }
