type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Eventq.t;
  root_rng : Rng.t;
  mutable fired : int;
}

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Eventq.create (); root_rng = Rng.create ~seed; fired = 0 }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng

let at t time f =
  if time < t.clock then
    invalid_arg
      (Format.asprintf "Engine.at: time %a is before now %a" Time.pp time Time.pp t.clock);
  Eventq.schedule t.queue ~at:time f

let after t delay f =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock + delay) f

let cancel = Eventq.cancel

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  let rec tick () = if f () then ignore (after t period tick) in
  ignore (at t first tick)

let step t =
  match Eventq.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Eventq.peek_time t.queue with
    | None -> continue := false
    | Some next -> (
        match until with
        | Some limit when next > limit ->
            t.clock <- max t.clock limit;
            continue := false
        | _ ->
            ignore (step t);
            decr budget)
  done;
  match until with
  | Some limit when t.clock < limit && Eventq.is_empty t.queue -> t.clock <- limit
  | _ -> ()

let pending t = Eventq.size t.queue
let events_fired t = t.fired
