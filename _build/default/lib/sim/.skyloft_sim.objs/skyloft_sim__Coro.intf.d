lib/sim/coro.mli: Time
