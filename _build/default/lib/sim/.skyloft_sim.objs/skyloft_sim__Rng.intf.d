lib/sim/rng.mli:
