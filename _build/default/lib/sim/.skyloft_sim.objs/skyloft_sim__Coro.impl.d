lib/sim/coro.ml: Time
