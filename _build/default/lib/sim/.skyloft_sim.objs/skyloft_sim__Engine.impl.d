lib/sim/engine.ml: Eventq Format Rng Time
