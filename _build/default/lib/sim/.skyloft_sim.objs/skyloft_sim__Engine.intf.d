lib/sim/engine.mli: Eventq Rng Time
