lib/sim/eventq.ml: Array Time
