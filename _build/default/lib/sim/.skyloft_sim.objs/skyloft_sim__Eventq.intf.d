lib/sim/eventq.mli: Time
