(** Simulated thread bodies.

    A [t] describes what a simulated thread does next, in
    continuation-passing style.  Runtimes (the Linux scheduler model, the
    Skyloft LibOS) interpret these descriptions: [Compute] consumes virtual
    CPU time and can be sliced by preemption at any instant; [Block]
    suspends until an external [wakeup]; [Yield] voluntarily releases the
    CPU.  Because the continuation is only invoked when the previous step
    finishes, bodies can carry arbitrary state in their closures. *)

type t =
  | Compute of Time.t * (unit -> t)
      (** run for the given virtual duration, then continue *)
  | Block of (unit -> t)
      (** block; the continuation runs after an external wakeup *)
  | Yield of (unit -> t)  (** release the CPU voluntarily, stay runnable *)
  | Exit  (** terminate the thread *)

val compute : Time.t -> (unit -> t) -> t
val block : (unit -> t) -> t
val yield : (unit -> t) -> t
val exit' : t

val compute_then_exit : Time.t -> t
(** One burst of work, then exit. *)

val forever_compute_block : Time.t -> t
(** The schbench worker shape: compute for the duration, block, repeat when
    woken.  The duration is re-used for every round. *)

val repeat : int -> (int -> t -> t) -> t -> t
(** [repeat n f tail] composes [f] [n] times around [tail]:
    [f 0 (f 1 (... (f (n-1) tail)))].  Handy for bounded loops. *)
