type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let of_us_float x = int_of_float (Float.round (x *. 1_000.))
let to_us_float t = float_of_int t /. 1_000.
let to_ms_float t = float_of_int t /. 1_000_000.
let to_s_float t = float_of_int t /. 1_000_000_000.

(* The paper's server: Intel Xeon Gold 5418Y at 2.0 GHz (§5, setup). *)
let cycles_per_ns = 2.0
let of_cycles c = int_of_float (Float.round (float_of_int c /. cycles_per_ns))
let to_cycles t = int_of_float (Float.round (float_of_int t *. cycles_per_ns))

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us_float t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms_float t)
  else Format.fprintf ppf "%.2fs" (to_s_float t)

let compare = Int.compare
