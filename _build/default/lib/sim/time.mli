(** Virtual time for the discrete-event simulation.

    All simulated latencies in the repository are expressed as integer
    nanoseconds of virtual time.  The paper's testbed runs at 2.0 GHz, so one
    cycle is exactly half a nanosecond; [of_cycles]/[to_cycles] use that
    conversion everywhere a paper-reported cycle count (e.g. Table 6) has to
    meet the nanosecond world of the scheduler. *)

type t = int
(** Nanoseconds of virtual time since simulation start. *)

val zero : t

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val s : int -> t
(** [s x] is [x] seconds. *)

val of_us_float : float -> t
(** [of_us_float x] converts a (possibly fractional) microsecond value,
    rounding to the nearest nanosecond. *)

val to_us_float : t -> float
(** [to_us_float t] is [t] expressed in microseconds. *)

val to_ms_float : t -> float
val to_s_float : t -> float

val cycles_per_ns : float
(** Clock rate of the simulated machine: 2.0 GHz, as in the paper (§5). *)

val of_cycles : int -> t
(** Convert a cycle count to nanoseconds (rounding to nearest). *)

val to_cycles : t -> int
(** Convert nanoseconds to cycles. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val compare : t -> t -> int
