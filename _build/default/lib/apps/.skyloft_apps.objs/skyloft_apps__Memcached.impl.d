lib/apps/memcached.ml: Skyloft_sim
