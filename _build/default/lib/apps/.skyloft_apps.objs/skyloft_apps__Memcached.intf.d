lib/apps/memcached.mli: Skyloft_sim
