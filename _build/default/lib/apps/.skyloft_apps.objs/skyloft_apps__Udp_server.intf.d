lib/apps/udp_server.mli: Skyloft Skyloft_net Skyloft_sim
