lib/apps/rocksdb.mli: Skyloft_sim
