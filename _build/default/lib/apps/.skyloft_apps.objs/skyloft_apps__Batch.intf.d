lib/apps/batch.mli: Skyloft Skyloft_sim
