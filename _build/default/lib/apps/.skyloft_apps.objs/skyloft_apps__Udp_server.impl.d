lib/apps/udp_server.ml: Array Hashtbl List Skyloft Skyloft_hw Skyloft_net Skyloft_sim
