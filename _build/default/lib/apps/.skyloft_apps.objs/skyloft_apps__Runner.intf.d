lib/apps/runner.mli: Skyloft Skyloft_kernel Skyloft_sim Skyloft_stats
