lib/apps/synthetic.mli: Skyloft Skyloft_sim
