lib/apps/runner.ml: Skyloft Skyloft_kernel Skyloft_sim Skyloft_stats
