lib/apps/batch.ml: Printf Skyloft Skyloft_sim
