lib/apps/rocksdb.ml: Skyloft_sim
