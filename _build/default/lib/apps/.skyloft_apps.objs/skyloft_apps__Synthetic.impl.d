lib/apps/synthetic.ml: Skyloft Skyloft_net Skyloft_sim
