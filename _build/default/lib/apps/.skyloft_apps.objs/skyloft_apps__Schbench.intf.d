lib/apps/schbench.mli: Runner Skyloft_sim Skyloft_stats
