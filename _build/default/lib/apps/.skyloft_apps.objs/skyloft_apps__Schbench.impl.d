lib/apps/schbench.ml: List Printf Queue Runner Skyloft_sim Skyloft_stats
