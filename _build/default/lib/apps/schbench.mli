module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Histogram = Skyloft_stats.Histogram

(** schbench v1.0 model (§5.1).

    M message threads continuously wake T worker threads; each woken worker
    performs a fixed chunk of work (matrix multiplication in the original,
    ~2,300 µs per request with default parameters) and goes back to sleep
    until the next wake.  The figure of merit is the p99 {e wakeup
    latency}: time from the wake to the worker's first instruction —
    queueing plus scheduling delay, the quantity Figure 5 plots against the
    worker count. *)

type config = {
  message_threads : int;
  workers : int;
  request : Time.t;  (** per-request work *)
  message_work : Time.t;  (** message-thread CPU per wake *)
}

val default_config : workers:int -> config
(** 1 message thread, 2,300 µs requests, 1 µs message work. *)

val run : Runner.t -> Engine.t -> config -> duration:Time.t -> Histogram.t
(** Start the benchmark now, simulate for [duration], and return the wakeup
    latency histogram (message-thread wakeups excluded). *)
