module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Histogram = Skyloft_stats.Histogram

type config = {
  message_threads : int;
  workers : int;
  request : Time.t;
  message_work : Time.t;
}

let default_config ~workers =
  { message_threads = 1; workers; request = Time.us 2_300; message_work = Time.us 1 }

let run (runner : Runner.t) engine config ~duration =
  if config.workers <= 0 || config.message_threads <= 0 then
    invalid_arg "Schbench.run: workers and message_threads must be positive";
  let stop_at = Engine.now engine + duration in
  (* Workers that finished a request and are waiting to be woken again. *)
  let pending : Runner.handle Queue.t = Queue.create () in
  let messengers = ref [] in
  let notify_messenger () = List.iter (fun m -> runner.wakeup m) !messengers in
  (* Worker: sleep; when woken, work one request, then report back. *)
  let spawn_worker i =
    let self = ref None in
    let rec loop () =
      Coro.Block
        (fun () ->
          Coro.Compute
            ( config.request,
              fun () ->
                if Engine.now engine >= stop_at then Coro.Exit
                else begin
                  (match !self with Some h -> Queue.push h pending | None -> ());
                  notify_messenger ();
                  loop ()
                end ))
    in
    let h = runner.spawn ~name:(Printf.sprintf "worker-%d" i) (loop ()) in
    self := Some h;
    Queue.push h pending
  in
  for i = 1 to config.workers do
    spawn_worker i
  done;
  (* Message thread: wake pending workers one by one, charging its own CPU
     per wake; sleep when nobody needs waking. *)
  let spawn_messenger i =
    let rec loop () =
      if Engine.now engine >= stop_at then Coro.Exit
      else
        match Queue.take_opt pending with
        | Some worker ->
            Coro.Compute
              ( config.message_work,
                fun () ->
                  runner.wakeup worker;
                  loop () )
        | None -> Coro.Block (fun () -> loop ())
    in
    let h = runner.spawn ~name:(Printf.sprintf "message-%d" i) (loop ()) in
    runner.set_track_wakeup h false;
    messengers := h :: !messengers
  in
  for i = 1 to config.message_threads do
    spawn_messenger i
  done;
  Engine.run ~until:stop_at engine;
  runner.wakeup_hist ()
