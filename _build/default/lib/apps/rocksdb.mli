module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** RocksDB UDP server model (§5.3, Figure 8b): 50% GETs at 0.95 µs and
    50% SCANs at 591 µs.  The heavy tail makes it the showcase for
    preemptive work stealing — without µs preemption a GET stuck behind a
    SCAN waits 600× its own service time, which is what the 99.9%
    slowdown metric exposes. *)

val get_service : Time.t
val scan_service : Time.t

val kind : Rng.t -> string
val service : Dist.t
val mean_service_ns : float
val saturation_rps : cores:int -> float
