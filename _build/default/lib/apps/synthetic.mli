module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** The §5.2 synthetic workload driver: an open-loop Poisson stream of
    dispersive requests (99.5% at 4 µs, 0.5% at 10 ms) submitted to a
    centralized runtime, as the paper's dedicated load-generator core
    does. *)

val dispersive : Dist.t

val saturation_rps : cores:int -> float
(** Offered load that saturates [cores] workers, before overheads. *)

val drive :
  Skyloft.Centralized.t ->
  Skyloft.App.t ->
  Engine.t ->
  rng:Rng.t ->
  rate_rps:float ->
  duration:Time.t ->
  unit
