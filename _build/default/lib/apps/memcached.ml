module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** Memcached model (§5.3, Figure 8a).

    An in-memory key-value store under Meta's USR workload: 99.8% GETs,
    0.2% SETs, light-tailed service times.  GETs hash and read one value
    (~4 us of CPU on the paper's 2 GHz cores including the network stack);
    SETs additionally allocate and write (~6 us).  Because the workload is
    light-tailed, preemption buys nothing — this is the experiment where
    Skyloft's job is simply to match Shenango's work stealing. *)

let get_fraction = 0.998
let get_service = Dist.Uniform { lo = Time.ns 3_000; hi = Time.ns 5_000 }
let set_service = Dist.Uniform { lo = Time.ns 5_000; hi = Time.ns 7_000 }

let kind rng = if Rng.uniform rng < get_fraction then "get" else "set"

(* One distribution view of the USR mix, for the load generator. *)
let service : Dist.t =
  Dist.Bimodal
    {
      p_short = get_fraction;
      short = Time.ns 4_000;
      long = Time.ns 6_000;
    }

let mean_service_ns = Dist.mean service

(** Offered load that saturates [cores] workers, before overheads. *)
let saturation_rps ~cores = float_of_int cores *. 1e9 /. mean_service_ns
