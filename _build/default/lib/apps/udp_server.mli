module Time = Skyloft_sim.Time

(** Generic UDP request server over the Skyloft per-CPU runtime (§3.5):
    each NIC queue is bound to one isolated core; an arriving packet spawns
    a user thread on that core that performs the request's CPU work and
    replies.  Latency is measured wire-arrival to completion, so ring and
    queueing delays count — as they do for the paper's open-loop clients. *)

val attach :
  Skyloft.Percpu.t ->
  Skyloft.App.t ->
  Skyloft_net.Nic.t ->
  cores:int list ->
  unit
(** Bind NIC queue [i] to the [i]-th core of [cores].  The number of queues
    must equal the number of cores.  For NICs in [Spin] or [Periodic]
    mode. *)

val attach_irq :
  Skyloft.Percpu.t ->
  Skyloft.App.t ->
  Skyloft_net.Nic.t ->
  cores:int list ->
  unit
(** Interrupt-driven variant (§6): for a NIC created in [Msi] mode
    targeting [cores].  Registers a user-space driver on
    {!Skyloft_hw.Vectors.uvec_nic} that drains the ring and spawns one
    thread per request — no polling core, no kernel in the path. *)
