module Time = Skyloft_sim.Time

(** Best-effort batch application: endless CPU-bound work in chunk-sized
    pieces, yielding between chunks so higher-priority work gets in at
    the next scheduling point (Figure 7c's measured co-tenant). *)

val spawn_workers :
  Skyloft.Percpu.t -> Skyloft.App.t -> workers:int -> chunk:Time.t -> unit
