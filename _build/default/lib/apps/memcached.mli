module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** Memcached model (§5.3, Figure 8a): an in-memory key-value store under
    Meta's USR workload — 99.8% GETs, 0.2% SETs, light-tailed service
    times.  Because the workload is light-tailed, preemption buys
    nothing: this is the experiment where Skyloft only has to match
    Shenango's work stealing. *)

val get_fraction : float
val get_service : Dist.t
val set_service : Dist.t

val kind : Rng.t -> string
(** Draw "get" or "set" with the USR mix. *)

val service : Dist.t
(** The USR mix as one distribution, for the load generator. *)

val mean_service_ns : float

val saturation_rps : cores:int -> float
(** Offered load that saturates [cores] workers, before overheads. *)
