module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Percpu = Skyloft.Percpu
module App = Skyloft.App

(** Best-effort batch application: endless CPU-bound work in [chunk]-sized
    pieces, yielding between chunks so higher-priority work gets in at the
    next scheduling point.  Used co-located with LC applications to measure
    the CPU share a scheduler leaves for batch processing (Figure 7c). *)

let spawn_workers rt app ~workers ~chunk =
  if workers <= 0 then invalid_arg "Batch.spawn_workers: workers must be positive";
  for i = 1 to workers do
    let rec loop () = Coro.Compute (chunk, fun () -> Coro.Yield loop) in
    ignore
      (Percpu.spawn rt app
         ~name:(Printf.sprintf "batch-%d" i)
         ~record:false (loop ()))
  done
