module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** RocksDB UDP server model (§5.3, Figure 8b).

    A persistent key-value store serving a bimodal mix: 50% GETs at 0.95 µs
    and 50% SCANs at 591 µs (the paper's measured processing times).  The
    heavy tail makes this the showcase for preemptive work stealing: without
    µs-scale preemption a GET stuck behind a SCAN waits 600x its own
    service time, which is exactly what the 99.9% slowdown metric exposes. *)

let get_service = Time.ns 950
let scan_service = Time.us 591

let kind rng = if Rng.uniform rng < 0.5 then "get" else "scan"

let service : Dist.t =
  Dist.Bimodal { p_short = 0.5; short = get_service; long = scan_service }

let mean_service_ns = Dist.mean service

let saturation_rps ~cores = float_of_int cores *. 1e9 /. mean_service_ns
