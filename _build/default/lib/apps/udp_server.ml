module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Nic = Skyloft_net.Nic
module Packet = Skyloft_net.Packet

module Vectors = Skyloft_hw.Vectors

let spawn_request rt app ~core (pkt : Packet.t) =
  ignore
    (Percpu.spawn rt app ~name:pkt.kind ~cpu:core ~arrival:pkt.arrival
       ~service:pkt.service
       (Coro.compute_then_exit pkt.service))

(* §6 extension: interrupt-driven reception.  The NIC (created with
   [Nic.Msi]) posts a user interrupt to the queue's core; this user-space
   driver drains the ring and spawns one thread per request. *)
let attach_irq rt app nic ~cores =
  if List.length cores <> Nic.queues nic then
    invalid_arg "Udp_server.attach_irq: queue count must match core count";
  let cores_arr = Array.of_list cores in
  let queue_of_core = Hashtbl.create 8 in
  Array.iteri (fun queue core -> Hashtbl.replace queue_of_core core queue) cores_arr;
  Skyloft.Percpu.register_uvec rt ~uvec:Vectors.uvec_nic (fun core ->
      match Hashtbl.find_opt queue_of_core core with
      | Some queue -> ignore (Nic.drain nic ~queue (spawn_request rt app ~core))
      | None -> ())

let attach rt app nic ~cores =
  if List.length cores <> Nic.queues nic then
    invalid_arg "Udp_server.attach: queue count must match core count";
  List.iteri
    (fun queue core -> Nic.on_packet nic ~queue (spawn_request rt app ~core))
    cores
