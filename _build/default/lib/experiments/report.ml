module Time = Skyloft_sim.Time

(** Plain-text rendering of experiment results: one section per table or
    figure, printing the series the paper plots so the shape comparison is
    immediate. *)

let rule = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" rule title rule

let subsection title = Printf.printf "\n-- %s --\n" title

let row_of_cells widths cells =
  String.concat "  "
    (List.map2 (fun w c -> Printf.sprintf "%*s" w c) widths cells)

let table ~header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_endline (row_of_cells widths header);
  print_endline
    (row_of_cells widths (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (row_of_cells widths row)) rows

let us t = Printf.sprintf "%.1f" (Time.to_us_float t)
let ns t = Printf.sprintf "%d" t
let cycles c = Printf.sprintf "%d" c
let krps v = Printf.sprintf "%.1f" (v /. 1_000.0)
let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)
let f1 v = Printf.sprintf "%.1f" v
let opt_cycles = function Some c -> cycles c | None -> "-"

let note fmt = Printf.printf ("note: " ^^ fmt ^^ "\n")
