lib/experiments/ablations.ml: Array Config Fun List Printf Report Skyloft Skyloft_apps Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_policies Skyloft_sim Skyloft_stats
