lib/experiments/fig6.ml: Config Format Fun List Printf Report Skyloft Skyloft_apps Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_stats
