lib/experiments/config.ml: Skyloft_sim
