lib/experiments/fig8.ml: Config Fun List Printf Report Skyloft Skyloft_apps Skyloft_baselines Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_policies Skyloft_sim Skyloft_stats
