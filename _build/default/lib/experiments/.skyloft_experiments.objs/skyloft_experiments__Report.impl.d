lib/experiments/report.ml: List Printf Skyloft_sim String
