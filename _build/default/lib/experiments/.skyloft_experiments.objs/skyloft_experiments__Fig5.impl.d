lib/experiments/fig5.ml: Config Fun List Report Skyloft Skyloft_apps Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_stats
