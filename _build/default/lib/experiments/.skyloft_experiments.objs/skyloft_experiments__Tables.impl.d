lib/experiments/tables.ml: List Report Skyloft_hw Skyloft_kernel Skyloft_sim String Sys
