module Time = Skyloft_sim.Time

(** Shared experiment configuration.

    [duration] is virtual seconds simulated per data point; the default
    trades a little percentile resolution for bench wall-clock time.
    Everything is deterministic given [seed]. *)

type t = { duration : Time.t; seed : int }

let default = { duration = Time.ms 300; seed = 42 }
let quick = { duration = Time.ms 80; seed = 42 }
let full = { duration = Time.s 1; seed = 42 }
