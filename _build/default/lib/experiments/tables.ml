module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod

(** The paper's tables: 4 (scheduler LoC), 5 (parameters), 6 (preemption
    mechanisms), 7 (threading operations), and the §5.4 inter-application
    switch microbenchmark. *)

(* ---- Table 4: lines of code per scheduler ---- *)

let policy_files =
  [
    ("Skyloft Round-Robin", "lib/policies/rr.ml");
    ("Skyloft CFS", "lib/policies/cfs.ml");
    ("Skyloft EEVDF", "lib/policies/eevdf.ml");
    ("Skyloft Shinjuku", "lib/policies/shinjuku.ml");
    ("Skyloft Shinjuku-Shenango", "lib/policies/shinjuku_shenango.ml");
    ("Skyloft Work-Stealing", "lib/policies/work_stealing.ml");
    ("Skyloft FIFO", "lib/policies/fifo.ml");
  ]

let paper_loc =
  [
    ("Linux CFS (kernel/sched/fair.c)", 6_592);
    ("Linux RT (kernel/sched/rt.c)", 1_939);
    ("Linux EEVDF (v6.8 fair.c)", 7_102);
    ("ghOSt Shinjuku", 710);
    ("ghOSt Shinjuku-Shenango", 727);
    ("Skyloft Round-Robin", 141);
    ("Skyloft CFS", 430);
    ("Skyloft EEVDF", 579);
    ("Skyloft Shinjuku", 192);
    ("Skyloft Shinjuku-Shenango", 444);
    ("Skyloft Work-Stealing (Preemptive)", 150);
  ]

(* Resolve a repo-relative path from wherever the binary runs (project
   root for dune exec, _build/default/... for dune runtest). *)
let resolve path =
  let candidates =
    [ path; "../" ^ path; "../../" ^ path; "../../../" ^ path; "../../../../" ^ path ]
  in
  List.find_opt Sys.file_exists candidates

(* Count non-blank, non-comment lines, roughly what cloc would report. *)
let count_loc path =
  match resolve path with
  | None -> None
  | Some path ->
    let ic = open_in path in
    let count = ref 0 and in_comment = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let opens = ref 0 and closes = ref 0 in
         String.iteri
           (fun i c ->
             if c = '(' && i + 1 < String.length line && line.[i + 1] = '*' then incr opens;
             if c = '*' && i + 1 < String.length line && line.[i + 1] = ')' then incr closes)
           line;
         let starts_in_comment = !in_comment > 0 in
         in_comment := max 0 (!in_comment + !opens - !closes);
         if
           line <> ""
           && (not starts_in_comment)
           && not (String.length line >= 2 && String.sub line 0 2 = "(*")
         then incr count
       done
     with End_of_file -> ());
    close_in ic;
    Some !count

let print_table4 () =
  Report.section "Table 4: lines of code per scheduler";
  let rows =
    List.map
      (fun (name, path) ->
        let loc = match count_loc path with Some n -> string_of_int n | None -> "n/a" in
        [ name; loc; path ])
      policy_files
  in
  Report.table ~header:[ "scheduler (this repo)"; "LoC"; "file" ] rows;
  Report.subsection "paper's Table 4 for comparison";
  Report.table
    ~header:[ "scheduler (paper)"; "LoC" ]
    (List.map (fun (n, l) -> [ n; string_of_int l ]) paper_loc);
  Report.note
    "the claim is the ratio: Skyloft policies are a few hundred lines where kernel";
  Report.note "schedulers are thousands";
  rows

(* ---- Table 5: scheduler parameters ---- *)

let print_table5 () =
  Report.section "Table 5: scheduling-policy parameters";
  Report.table
    ~header:[ "policy"; "timer hz"; "min_gran/base_slice"; "time_slice/sched_latency" ]
    [
      [ "Linux RR (default)"; "250"; "-"; "100ms" ];
      [ "Linux CFS (default)"; "250"; "3ms"; "24ms" ];
      [ "Linux CFS (tuned)"; "1,000"; "12.5us"; "50us" ];
      [ "Linux EEVDF (default)"; "1,000"; "3ms"; "-" ];
      [ "Linux EEVDF (tuned)"; "1,000"; "12.5us"; "-" ];
      [ "Skyloft RR"; "100,000"; "-"; "50us" ];
      [ "Skyloft CFS"; "100,000"; "12.5us"; "50us" ];
      [ "Skyloft EEVDF"; "100,000"; "12.5us"; "-" ];
    ];
  Report.note "Linux caps CONFIG_HZ at 1000; Skyloft's user-space timer runs at 100 kHz"

(* ---- Table 6: preemption mechanisms ---- *)

let print_table6 () =
  Report.section "Table 6: preemption mechanism comparison (cycles)";
  let rows =
    List.map2
      (fun (m : Costs.mechanism) (_, psend, precv, pdeliv) ->
        [
          m.name;
          Report.opt_cycles m.send;
          Report.cycles m.receive;
          Report.opt_cycles m.delivery;
          Report.opt_cycles psend;
          Report.cycles precv;
          Report.opt_cycles pdeliv;
        ])
      Costs.table6 Costs.paper_table6
  in
  Report.table
    ~header:
      [ "mechanism"; "send"; "receive"; "delivery"; "paper:send"; "recv"; "deliv" ]
    rows;
  Report.note "model columns are composed from named micro-costs (lib/hw/costs.ml);";
  Report.note "senduipi with SN set (handler re-arm): %d cycles (paper: ~123)"
    Costs.senduipi_sn;
  rows

(* ---- Table 7: threading operations (model columns) ----
   The measured Skyloft column comes from the Bechamel benchmarks in
   bench/main.ml; here we print the paper's numbers plus our cost-model
   values used by the simulation. *)

let print_table7_model () =
  Report.section "Table 7: threading operation comparison (ns) — paper / simulation model";
  let ops = [ "Yield"; "Spawn"; "Mutex"; "Condvar" ] in
  let col l op = List.assoc op l in
  let rows =
    List.map
      (fun op ->
        [
          op;
          string_of_int (col Costs.pthread_ops_ns op);
          string_of_int (col Costs.go_ops_ns op);
          string_of_int (col Costs.skyloft_ops_ns op);
        ])
      ops
  in
  Report.table ~header:[ "operation"; "pthread"; "Go"; "Skyloft" ] rows;
  Report.note "real measurements of this repo's effects-based uthreads are in the";
  Report.note "bench output (Bechamel), reproducing the shape: user-level ops are";
  Report.note "orders of magnitude cheaper than kernel threads";
  rows

(* ---- §5.4: thread switching across applications ---- *)

let print_appswitch () =
  Report.section "§5.4 microbenchmark: inter-application switch cost";
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:0 in
  ignore (Kmod.activate kmod a);
  let cost = Kmod.switch_to kmod ~from:a ~target:b in
  Report.table
    ~header:[ "operation"; "model (ns)"; "paper (ns)" ]
    [
      [ "Skyloft inter-application switch"; Report.ns cost; "1,905" ];
      [ "Linux switch (both runnable)"; Report.ns Costs.linux_ctx_switch_ns; "1,124" ];
      [ "Linux switch (with wakeup)"; Report.ns Costs.linux_wakeup_switch_ns; "2,471" ];
      [ "Skyloft same-app switch"; Report.ns Costs.uthread_yield_ns; "37" ];
    ]
