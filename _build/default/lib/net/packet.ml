module Time = Skyloft_sim.Time

(** Network requests as the server sees them: enough header to steer
    (flow hash), plus workload metadata (arrival, service demand, kind).
    Payload bytes are irrelevant to scheduling and are not modelled. *)

type t = {
  arrival : Time.t;  (** when the packet reached the NIC *)
  service : Time.t;  (** CPU demand of handling the request *)
  flow : int;  (** flow identifier, input to RSS *)
  kind : string;  (** request type: "get", "set", "scan", ... *)
}

let create ~arrival ~service ~flow ~kind = { arrival; service; flow; kind }

let pp ppf p =
  Format.fprintf ppf "%s flow=%d arrival=%a service=%a" p.kind p.flow Time.pp p.arrival
    Time.pp p.service
