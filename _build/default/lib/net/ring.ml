(** Bounded receive ring: the shared ring buffer between the NIC/polling
    core and an isolated worker core (§3.5).  Overflow drops the packet,
    like a real rx ring under overload. *)

type t = {
  capacity : int;
  buf : Packet.t option array;
  mutable head : int;  (* next slot to pop *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let length t = t.len
let is_empty t = t.len = 0
let dropped t = t.dropped

let push t pkt =
  if t.len = t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some pkt;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let slot = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1;
    slot
  end
