(** Receive Side Scaling: a deterministic hash from flow id to receive
    queue (§3.5).  A multiplicative hash stands in for Toeplitz: what
    matters is a deterministic, roughly uniform flow-to-queue mapping. *)

val hash : int -> int
(** Non-negative hash of a flow id. *)

val queue_of_flow : queues:int -> int -> int
(** Queue index in [\[0, queues)] for the flow.  [queues] must be
    positive. *)
