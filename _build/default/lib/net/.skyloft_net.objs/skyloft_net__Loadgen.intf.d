lib/net/loadgen.mli: Packet Skyloft_sim
