lib/net/loadgen.ml: Packet Skyloft_sim
