lib/net/packet.mli: Format Skyloft_sim
