lib/net/rss.mli:
