lib/net/nic.ml: Array Packet Ring Rss Skyloft_hw Skyloft_sim
