lib/net/rss.ml:
