lib/net/packet.ml: Format Skyloft_sim
