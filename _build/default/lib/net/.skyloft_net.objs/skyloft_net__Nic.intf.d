lib/net/nic.mli: Packet Skyloft_hw Skyloft_sim
