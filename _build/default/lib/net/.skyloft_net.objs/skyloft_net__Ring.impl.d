lib/net/ring.ml: Array Packet
