lib/net/ring.mli: Packet
