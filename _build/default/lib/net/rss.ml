(** Receive Side Scaling: a deterministic hash from flow id to receive
    queue, as the NIC uses to spread flows over cores (§3.5).

    A small multiplicative hash (Fibonacci hashing) stands in for Toeplitz:
    what matters for the experiments is a deterministic, roughly uniform
    flow-to-queue mapping. *)

let hash flow =
  let h = flow * 0x9E3779B1 in
  (h lsr 8) land 0x7FFFFFFF

let queue_of_flow ~queues flow =
  if queues <= 0 then invalid_arg "Rss.queue_of_flow: queues must be positive";
  hash flow mod queues
