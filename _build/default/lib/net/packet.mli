module Time = Skyloft_sim.Time

(** Network requests as the server sees them: enough header to steer
    (flow hash) plus workload metadata.  Payload bytes are irrelevant to
    scheduling and are not modelled. *)

type t = {
  arrival : Time.t;  (** when the packet reached the NIC *)
  service : Time.t;  (** CPU demand of handling the request *)
  flow : int;  (** flow identifier, input to RSS *)
  kind : string;  (** request type: "get", "set", "scan", ... *)
}

val create : arrival:Time.t -> service:Time.t -> flow:int -> kind:string -> t
val pp : Format.formatter -> t -> unit
