(** Bounded receive ring between the NIC and a worker core (§3.5).
    Overflow drops the packet, like a real rx ring under overload. *)

type t

val create : capacity:int -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> Packet.t -> bool
(** [false] (and the drop counted) when the ring is full. *)

val pop : t -> Packet.t option
val dropped : t -> int
