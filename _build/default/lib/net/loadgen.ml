module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

let poisson engine ~rng ~rate_rps ~service ?start ~duration ?(kind = fun _ -> "req") sink =
  if rate_rps <= 0.0 then invalid_arg "Loadgen.poisson: rate must be positive";
  let start = match start with Some s -> s | None -> Engine.now engine in
  let mean_gap_ns = 1e9 /. rate_rps in
  let stop = start + duration in
  let rec arrive at =
    if at < stop then
      ignore
        (Engine.at engine at (fun () ->
             let pkt =
               Packet.create ~arrival:at
                 ~service:(Dist.sample service rng)
                 ~flow:(Rng.int rng 1_000_000) ~kind:(kind rng)
             in
             sink pkt;
             let gap = max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap_ns)) in
             arrive (at + gap)))
  in
  arrive (start + max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap_ns)))

let uniform_closed engine ~rng ~interval ~count ~service sink =
  if interval <= 0 then invalid_arg "Loadgen.uniform_closed: interval must be positive";
  for i = 0 to count - 1 do
    let at = Engine.now engine + (i * interval) in
    ignore
      (Engine.at engine at (fun () ->
           sink
             (Packet.create ~arrival:at ~service:(Dist.sample service rng)
                ~flow:(Rng.int rng 1_000_000) ~kind:"req")))
  done
