module Time = Skyloft_sim.Time

(** Per-CPU Round-Robin with time slicing — the Skyloft counterpart of
    SCHED_RR (§5.1, Table 5: 50 µs slices at a 100 kHz tick).

    Each core owns a FIFO runqueue; the timer tick preempts the running
    task once its slice is used, sending it to the tail of its local
    queue.  [slice = None] is Skyloft-FIFO from Figure 6: an infinite
    slice, so the tick never preempts. *)

val create : ?slice:Time.t -> unit -> Skyloft.Sched_ops.ctor
