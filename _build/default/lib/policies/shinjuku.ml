module Time = Skyloft_sim.Time
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** Skyloft-Shinjuku: the centralized preemptive policy of §5.2.

    One global FIFO queue owned by the dispatcher.  Requests run until they
    either finish or exceed the preemption quantum, in which case the
    dispatcher preempts them with a user IPI and returns them to the {e
    tail} of the queue — approximating processor sharing, which is what
    keeps short requests ahead of the occasional 10 ms monster.  The
    quantum lives in the centralized runtime ({!Skyloft.Centralized});
    this policy only has to describe the queue, which is why it is an
    order of magnitude smaller than the original Shinjuku system
    (Table 4). *)

let create () : Sched_ops.ctor =
 fun view ->
  let q = Runqueue.create () in
  {
    Sched_ops.policy_name = "shinjuku";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ task -> Runqueue.push_tail q task);
    task_dequeue = (fun ~cpu:_ -> Runqueue.pop_head q);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        Runqueue.push_tail q task;
        Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
    sched_timer_tick = (fun ~cpu:_ _ -> false);
    sched_balance = Sched_ops.no_balance;
  }
