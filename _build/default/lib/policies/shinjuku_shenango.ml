module Time = Skyloft_sim.Time
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue
module Task = Skyloft.Task

(** Skyloft-Shinjuku-Shenango: the multi-application centralized policy of
    §5.2 ("Multiple workloads").

    The latency-critical side is the Shinjuku global queue; on top of it,
    Shenango's core-allocation strategy grants idle worker cores to a
    co-located batch application and reclaims them when the dispatcher's
    periodic congestion check (default every 5 µs) finds latency-critical
    requests waiting.  The reclaim machinery lives in the centralized
    runtime ([?be_reclaim]); the policy additionally tracks queueing delay
    so the congestion signal matches Shenango's (oldest queued request,
    not just queue emptiness). *)

type stats = { mutable max_queue_delay : Time.t; mutable congestion_events : int }

let create () : Sched_ops.ctor * stats =
  let stats = { max_queue_delay = 0; congestion_events = 0 } in
  let ctor : Sched_ops.ctor =
   fun view ->
    let q = Runqueue.create () in
    let note_delay () =
      match Runqueue.peek_head q with
      | Some task ->
          let delay = view.now () - task.Task.enqueue_time in
          if delay > stats.max_queue_delay then stats.max_queue_delay <- delay;
          if delay > 0 then stats.congestion_events <- stats.congestion_events + 1
      | None -> ()
    in
    {
      Sched_ops.policy_name = "shinjuku-shenango";
      task_init = ignore;
      task_terminate = ignore;
      task_enqueue =
        (fun ~cpu:_ ~reason:_ task ->
          task.Task.enqueue_time <- view.now ();
          Runqueue.push_tail q task);
      task_dequeue =
        (fun ~cpu:_ ->
          note_delay ();
          Runqueue.pop_head q);
      task_block = (fun ~cpu:_ _ -> ());
      task_wakeup =
        (fun ~waker_cpu task ->
          task.Task.enqueue_time <- view.now ();
          Runqueue.push_tail q task;
          Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
      sched_timer_tick = (fun ~cpu:_ _ -> false);
      sched_balance = Sched_ops.no_balance;
    }
  in
  (ctor, stats)
