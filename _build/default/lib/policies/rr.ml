module Time = Skyloft_sim.Time
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** Per-CPU Round-Robin with time slicing — the Skyloft counterpart of
    SCHED_RR (§5.1).  Each core owns a FIFO runqueue; the timer tick
    preempts the running task once its slice is used, sending it to the
    tail of its local queue.  [slice = None] gives Skyloft-FIFO from
    Figure 6: an infinite slice, so the tick never preempts. *)

let create ?slice () : Sched_ops.ctor =
 fun view ->
  let queues = Hashtbl.create 32 in
  Array.iter (fun core -> Hashtbl.replace queues core (Runqueue.create ())) view.cores;
  let q cpu =
    match Hashtbl.find_opt queues cpu with
    | Some q -> q
    | None -> invalid_arg "rr: unmanaged cpu"
  in
  let least_loaded () =
    Array.fold_left
      (fun best core ->
        if Runqueue.length (q core) < Runqueue.length (q best) then core else best)
      view.cores.(0) view.cores
  in
  {
    Sched_ops.policy_name =
      (match slice with Some _ -> "rr" | None -> "fifo-percpu");
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu ~reason:_ task -> Runqueue.push_tail (q cpu) task);
    task_dequeue = (fun ~cpu -> Runqueue.pop_head (q cpu));
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu:_ task ->
        let target =
          match Sched_ops.pick_idle view with
          | Some core -> core
          | None -> least_loaded ()
        in
        Runqueue.push_tail (q target) task;
        target);
    sched_timer_tick =
      (fun ~cpu task ->
        match slice with
        | None -> false
        | Some slice ->
            (not (Runqueue.is_empty (q cpu))) && view.now () - task.Task.run_start >= slice);
    sched_balance =
      (fun ~cpu ->
        let stolen = ref None in
        Array.iter
          (fun core ->
            if !stolen = None && core <> cpu then stolen := Runqueue.pop_tail (q core))
          view.cores;
        !stolen);
  }
