module Time = Skyloft_sim.Time

(** Skyloft CFS: per-CPU fair scheduling by virtual runtime (§5.1).

    The task's vruntime lives in [policy_f1]; each core keeps a runqueue
    and a monotonic min_vruntime; dequeue picks the smallest vruntime.
    The slice is [max min_granularity (sched_latency / nr_running)],
    checked on every user-space timer tick — at Skyloft's 100 kHz the
    effective granularity is 10 µs where Linux is capped at 1 ms
    (Table 5, Figure 5).  Woken sleepers receive the gentle credit of
    half a [sched_latency], like the kernel. *)

type config = { min_granularity : Time.t; sched_latency : Time.t }

val default_config : config
(** Table 5: min_granularity 12.5 µs, sched_latency 50 µs. *)

val create : ?config:config -> unit -> Skyloft.Sched_ops.ctor
