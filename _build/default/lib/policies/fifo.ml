module Time = Skyloft_sim.Time
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** First-Come-First-Served over a single global runqueue, run to
    completion: the classic dataplane policy (IX/ZygOS-style).  Never asks
    for preemption; ideal for light-tailed workloads, head-of-line-blocked
    on heavy tails (§2.1). *)

let create () : Sched_ops.ctor =
 fun view ->
  let q = Runqueue.create () in
  let enqueue task = Runqueue.push_tail q task in
  {
    Sched_ops.policy_name = "fifo";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ task -> enqueue task);
    task_dequeue = (fun ~cpu:_ -> Runqueue.pop_head q);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        enqueue task;
        Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
    sched_timer_tick = (fun ~cpu:_ _ -> false);
    sched_balance = Sched_ops.no_balance;
  }
