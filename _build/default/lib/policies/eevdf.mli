module Time = Skyloft_sim.Time

(** Skyloft EEVDF: Earliest Eligible Virtual Deadline First (§5.1;
    Stoica & Abdel-Wahab; Linux >= 6.6).

    A task is eligible when vruntime <= average vruntime; among eligible
    tasks the earliest virtual deadline (vruntime + base_slice) runs.
    Blocking preserves lag (clamped to one slice) so sleepers resume
    exactly where fairness says.  Task fields: [policy_f1] vruntime,
    [policy_f2] deadline, [policy_i] lag. *)

type config = { base_slice : Time.t }

val default_config : config
(** Table 5: base_slice 12.5 µs. *)

val create : ?config:config -> unit -> Skyloft.Sched_ops.ctor
