lib/policies/eevdf.mli: Skyloft Skyloft_sim
