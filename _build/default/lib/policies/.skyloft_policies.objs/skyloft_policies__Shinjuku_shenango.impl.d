lib/policies/shinjuku_shenango.ml: Skyloft Skyloft_sim
