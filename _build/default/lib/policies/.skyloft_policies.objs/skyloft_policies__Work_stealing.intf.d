lib/policies/work_stealing.mli: Skyloft Skyloft_sim
