lib/policies/shinjuku.ml: Skyloft Skyloft_sim
