lib/policies/fifo.ml: Skyloft Skyloft_sim
