lib/policies/eevdf.ml: Array Float Hashtbl Skyloft Skyloft_sim
