lib/policies/work_stealing.ml: Array Hashtbl Skyloft Skyloft_sim
