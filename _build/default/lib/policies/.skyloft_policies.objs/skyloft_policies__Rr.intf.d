lib/policies/rr.mli: Skyloft Skyloft_sim
