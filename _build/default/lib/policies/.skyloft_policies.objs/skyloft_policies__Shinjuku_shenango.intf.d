lib/policies/shinjuku_shenango.mli: Skyloft Skyloft_sim
