lib/policies/rr.ml: Array Hashtbl Skyloft Skyloft_sim
