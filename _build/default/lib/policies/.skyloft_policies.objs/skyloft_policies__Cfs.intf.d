lib/policies/cfs.mli: Skyloft Skyloft_sim
