lib/policies/cfs.ml: Array Float Hashtbl Skyloft Skyloft_sim
