lib/policies/shinjuku.mli: Skyloft
