lib/policies/fifo.mli: Skyloft
