module Time = Skyloft_sim.Time

(** Work stealing, Shenango-style (§5.3), cooperative or preemptive.

    Each core owns a deque: the owner uses the head, thieves scan victims
    round-robin and steal from the tail; woken tasks land on the waking
    core's queue.  The preemptive variant is the paper's RocksDB
    punchline: without changing the policy, the user-space timer tick
    preempts any request over the quantum, breaking head-of-line blocking
    (Figure 8b).  [quantum = None] is plain cooperative work stealing
    (Memcached, Figure 8a). *)

val create : ?quantum:Time.t -> unit -> Skyloft.Sched_ops.ctor
