module Time = Skyloft_sim.Time

(** Skyloft-Shinjuku-Shenango: the multi-application centralized policy
    of §5.2.  The LC side is the Shinjuku global queue; Shenango's core
    allocation (grant idle cores to a batch app, reclaim on the 5 µs
    congestion check) lives in the centralized runtime's [be_reclaim].
    This policy additionally tracks queueing delay, Shenango's
    congestion signal. *)

type stats = { mutable max_queue_delay : Time.t; mutable congestion_events : int }

val create : unit -> Skyloft.Sched_ops.ctor * stats
