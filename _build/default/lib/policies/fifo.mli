(** First-Come-First-Served over a single global runqueue, run to
    completion: the classic dataplane policy (IX/ZygOS-style, §2.1).
    Never requests preemption: ideal for light-tailed workloads,
    head-of-line blocked on heavy tails. *)

val create : unit -> Skyloft.Sched_ops.ctor
