module Time = Skyloft_sim.Time
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** Skyloft CFS: per-CPU fair scheduling by virtual runtime (§5.1).

    The task's vruntime lives in [policy_f1].  Each core keeps its own
    runqueue and a monotonic min_vruntime; [task_dequeue] picks the
    smallest vruntime.  The slice is [max min_granularity
    (sched_latency / nr_running)], checked on every user-space timer tick —
    at Skyloft's 100 kHz tick the effective granularity is 10 µs where
    Linux is capped at 1 ms (Table 5, Figure 5).  Woken sleepers receive
    the gentle credit of half a [sched_latency], exactly like the kernel. *)

type config = { min_granularity : Time.t; sched_latency : Time.t }

let default_config =
  { min_granularity = Time.of_us_float 12.5; sched_latency = Time.us 50 }

let create ?(config = default_config) () : Sched_ops.ctor =
 fun view ->
  let queues = Hashtbl.create 32 in
  let min_v = Hashtbl.create 32 in
  Array.iter
    (fun core ->
      Hashtbl.replace queues core (Runqueue.create ());
      Hashtbl.replace min_v core 0.0)
    view.cores;
  let q cpu =
    match Hashtbl.find_opt queues cpu with
    | Some q -> q
    | None -> invalid_arg "cfs: unmanaged cpu"
  in
  let get_min cpu = Hashtbl.find min_v cpu in
  let bump_min cpu v = if v > get_min cpu then Hashtbl.replace min_v cpu v in
  
  (* Account the CPU time a task consumed since it started running, and
     advance the core's min_vruntime like the kernel's update_curr does:
     max(min_vruntime, min(curr, leftmost)). *)
  let charge cpu task =
    let ran = view.now () - task.Task.run_start in
    if ran > 0 then task.Task.policy_f1 <- task.Task.policy_f1 +. float_of_int ran;
    let leftmost = ref task.Task.policy_f1 in
    Runqueue.iter
      (fun t -> if t.Task.policy_f1 < !leftmost then leftmost := t.Task.policy_f1)
      (q cpu);
    bump_min cpu !leftmost
  in
  let pick_min cpu =
    let best = ref None in
    Runqueue.iter
      (fun task ->
        match !best with
        | None -> best := Some task
        | Some b -> if task.Task.policy_f1 < b.Task.policy_f1 then best := Some task)
      (q cpu);
    !best
  in
  let least_loaded () =
    Array.fold_left
      (fun best core ->
        if Runqueue.length (q core) < Runqueue.length (q best) then core else best)
      view.cores.(0) view.cores
  in
  {
    Sched_ops.policy_name = "cfs";
    task_init = (fun task -> task.Task.policy_f1 <- get_min task.Task.last_core);
    task_terminate = ignore;
    task_enqueue =
      (fun ~cpu ~reason task ->
        (match reason with
        | Sched_ops.Enq_preempted | Sched_ops.Enq_yielded -> charge cpu task
        | Sched_ops.Enq_new ->
            task.Task.policy_f1 <- Float.max task.Task.policy_f1 (get_min cpu)
        | Sched_ops.Enq_woken -> ());
        Runqueue.push_tail (q cpu) task);
    task_dequeue =
      (fun ~cpu ->
        match pick_min cpu with
        | None -> None
        | Some task ->
            ignore (Runqueue.remove (q cpu) task);
            bump_min cpu task.Task.policy_f1;
            Some task);
    task_block = (fun ~cpu task -> charge cpu task);
    task_wakeup =
      (fun ~waker_cpu:_ task ->
        let target =
          match Sched_ops.pick_idle view with
          | Some core -> core
          | None -> least_loaded ()
        in
        (* Migrating runqueues changes the virtual-time basis. *)
        if Hashtbl.mem min_v task.Task.last_core && task.Task.last_core <> target then
          task.Task.policy_f1 <-
            task.Task.policy_f1 -. get_min task.Task.last_core +. get_min target;
        task.Task.last_core <- target;
        (* Gentle sleeper credit: place at most half a latency behind. *)
        let credit = float_of_int config.sched_latency /. 2.0 in
        task.Task.policy_f1 <- Float.max task.Task.policy_f1 (get_min target -. credit);
        Runqueue.push_tail (q target) task;
        target);
    sched_timer_tick =
      (fun ~cpu task ->
        let nr = Runqueue.length (q cpu) + 1 in
        let slice = max config.min_granularity (config.sched_latency / nr) in
        (not (Runqueue.is_empty (q cpu))) && view.now () - task.Task.run_start >= slice);
    sched_balance =
      (fun ~cpu ->
        let stolen = ref None in
        Array.iter
          (fun core ->
            if !stolen = None && core <> cpu then
              match pick_min core with
              | Some task ->
                  ignore (Runqueue.remove (q core) task);
                  (* renormalise onto the stealing core's clock *)
                  task.Task.policy_f1 <-
                    task.Task.policy_f1 -. get_min core +. get_min cpu;
                  stolen := Some task
              | _ -> ())
          view.cores;
        !stolen);
  }
