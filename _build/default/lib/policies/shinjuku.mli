(** Skyloft-Shinjuku: the centralized preemptive policy of §5.2 — one
    global FIFO queue owned by the dispatcher; over-quantum requests are
    preempted by user IPI and returned to the tail (processor sharing).
    The quantum lives in {!Skyloft.Centralized}; the policy is just the
    queue, which is why it is an order of magnitude smaller than the
    original Shinjuku system (Table 4). *)

val create : unit -> Skyloft.Sched_ops.ctor
