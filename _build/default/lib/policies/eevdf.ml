module Time = Skyloft_sim.Time
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** Skyloft EEVDF: Earliest Eligible Virtual Deadline First (§5.1).

    Unlike CFS's heuristics, EEVDF is defined by two rules (Stoica &
    Abdel-Wahab; Linux >= 6.6): a task is {e eligible} when it has received
    less service than its fair share (vruntime <= average vruntime), and
    among eligible tasks the one with the earliest {e virtual deadline}
    (vruntime at enqueue + base_slice) runs.  Blocking preserves {e lag} —
    the service credit/debit — so sleepers resume exactly where fairness
    says they should, with the lag clamped to one slice.

    Task fields: [policy_f1] = vruntime, [policy_f2] = virtual deadline,
    [policy_i] = lag in ns (captured at block time). *)

type config = { base_slice : Time.t }

let default_config = { base_slice = Time.of_us_float 12.5 }

let create ?(config = default_config) () : Sched_ops.ctor =
 fun view ->
  let queues = Hashtbl.create 32 in
  let min_v = Hashtbl.create 32 in
  Array.iter
    (fun core ->
      Hashtbl.replace queues core (Runqueue.create ());
      Hashtbl.replace min_v core 0.0)
    view.cores;
  let q cpu =
    match Hashtbl.find_opt queues cpu with
    | Some q -> q
    | None -> invalid_arg "eevdf: unmanaged cpu"
  in
  let get_min cpu = Hashtbl.find min_v cpu in
  let bump_min cpu v = if v > get_min cpu then Hashtbl.replace min_v cpu v in
  (* Account the CPU time a task consumed since it started running, and
     advance the core's min_vruntime like the kernel's update_curr does:
     max(min_vruntime, min(curr, leftmost)). *)
  let charge cpu task =
    let ran = view.now () - task.Task.run_start in
    if ran > 0 then task.Task.policy_f1 <- task.Task.policy_f1 +. float_of_int ran;
    let leftmost = ref task.Task.policy_f1 in
    Runqueue.iter
      (fun t -> if t.Task.policy_f1 < !leftmost then leftmost := t.Task.policy_f1)
      (q cpu);
    bump_min cpu !leftmost
  in
  let avg_vruntime cpu =
    let sum = ref 0.0 and n = ref 0 in
    Runqueue.iter
      (fun task ->
        sum := !sum +. task.Task.policy_f1;
        incr n)
      (q cpu);
    if !n = 0 then get_min cpu else !sum /. float_of_int !n
  in
  let set_deadline task =
    task.Task.policy_f2 <- task.Task.policy_f1 +. float_of_int config.base_slice
  in
  let pick cpu =
    let avg = avg_vruntime cpu in
    let best_eligible = ref None and best_any = ref None in
    let better cand = function
      | None -> true
      | Some b -> cand.Task.policy_f2 < b.Task.policy_f2
    in
    Runqueue.iter
      (fun task ->
        if better task !best_any then best_any := Some task;
        if task.Task.policy_f1 <= avg && better task !best_eligible then
          best_eligible := Some task)
      (q cpu);
    match !best_eligible with Some _ as r -> r | None -> !best_any
  in
  let least_loaded () =
    Array.fold_left
      (fun best core ->
        if Runqueue.length (q core) < Runqueue.length (q best) then core else best)
      view.cores.(0) view.cores
  in
  {
    Sched_ops.policy_name = "eevdf";
    task_init =
      (fun task ->
        task.Task.policy_f1 <- get_min task.Task.last_core;
        set_deadline task);
    task_terminate = ignore;
    task_enqueue =
      (fun ~cpu ~reason task ->
        (match reason with
        | Sched_ops.Enq_preempted | Sched_ops.Enq_yielded ->
            charge cpu task;
            (* past its deadline: grant a new request interval *)
            if task.Task.policy_f1 >= task.Task.policy_f2 then set_deadline task
        | Sched_ops.Enq_new ->
            task.Task.policy_f1 <- Float.max task.Task.policy_f1 (get_min cpu);
            set_deadline task
        | Sched_ops.Enq_woken -> ());
        Runqueue.push_tail (q cpu) task);
    task_dequeue =
      (fun ~cpu ->
        match pick cpu with
        | None -> None
        | Some task ->
            ignore (Runqueue.remove (q cpu) task);
            bump_min cpu task.Task.policy_f1;
            Some task);
    task_block =
      (fun ~cpu task ->
        charge cpu task;
        (* lag: how far behind (positive) or ahead (negative) of the fair
           share this task is, clamped to one slice *)
        let lag = avg_vruntime cpu -. task.Task.policy_f1 in
        let cap = float_of_int config.base_slice in
        task.Task.policy_i <- int_of_float (Float.max (-.cap) (Float.min cap lag)));
    task_wakeup =
      (fun ~waker_cpu:_ task ->
        let target =
          match Sched_ops.pick_idle view with
          | Some core -> core
          | None -> least_loaded ()
        in
        task.Task.policy_f1 <- avg_vruntime target -. float_of_int task.Task.policy_i;
        set_deadline task;
        task.Task.last_core <- target;
        Runqueue.push_tail (q target) task;
        target);
    sched_timer_tick =
      (fun ~cpu task ->
        if Runqueue.is_empty (q cpu) then false
        else if view.now () - task.Task.run_start >= config.base_slice then true
        else false);
    sched_balance =
      (fun ~cpu ->
        let stolen = ref None in
        Array.iter
          (fun core ->
            if !stolen = None && core <> cpu then
              match pick core with
              | Some task ->
                  ignore (Runqueue.remove (q core) task);
                  task.Task.policy_f1 <-
                    task.Task.policy_f1 -. get_min core +. get_min cpu;
                  set_deadline task;
                  stolen := Some task
              | None -> ())
          view.cores;
        !stolen);
  }
