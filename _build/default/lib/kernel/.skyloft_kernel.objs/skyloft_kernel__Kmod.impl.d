lib/kernel/kmod.ml: Format Kthread List Skyloft_hw Skyloft_sim
