lib/kernel/kthread.ml: Format Skyloft_sim
