lib/kernel/kthread.mli: Format Skyloft_sim
