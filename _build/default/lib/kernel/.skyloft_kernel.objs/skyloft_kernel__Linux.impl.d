lib/kernel/linux.ml: Array Float Hashtbl Kthread List Skyloft_hw Skyloft_sim Skyloft_stats
