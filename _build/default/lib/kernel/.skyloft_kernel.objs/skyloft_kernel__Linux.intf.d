lib/kernel/linux.mli: Kthread Skyloft_hw Skyloft_sim Skyloft_stats
