lib/kernel/kmod.mli: Skyloft_hw Skyloft_sim
