module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Histogram = Skyloft_stats.Histogram

(** Simulated Linux scheduler.

    A per-CPU tick-driven scheduler over the simulated machine, implementing
    the three kernel policies the paper compares against (§5.1): CFS
    (vruntime fair scheduling with [min_granularity]/[sched_latency] and
    gentle sleeper credit), SCHED_RR (fixed time slices), and EEVDF
    (lag-preserving virtual deadlines, Linux >= 6.6).  Preemption decisions
    happen at wakeups and on the CONFIG_HZ timer tick — the tick resolution
    is exactly what caps Linux's wakeup latency in Figure 5, since the
    maximum configurable rate is 1000 Hz.

    Threads are {!Coro} bodies; the scheduler charges context-switch costs,
    tick interrupt overhead and wakeup paths from {!Skyloft_hw.Costs}. *)

type policy =
  | Cfs of {
      hz : int;
      min_granularity : Time.t;
      sched_latency : Time.t;
      wakeup_granularity : Time.t;
    }
  | Rr of { hz : int; slice : Time.t }
  | Eevdf of { hz : int; base_slice : Time.t }

val cfs_default : policy
(** HZ=250, min_granularity=3 ms, sched_latency=24 ms (Table 5). *)

val cfs_tuned : policy
(** HZ=1000, min_granularity=12.5 µs, sched_latency=50 µs (Table 5). *)

val rr_default : policy
(** HZ=250, slice=100 ms (Table 5). *)

val eevdf_default : policy
(** HZ=1000, base_slice=3 ms (Table 5). *)

val eevdf_tuned : policy
(** HZ=1000, base_slice=12.5 µs (Table 5). *)

type t

val create : Machine.t -> policy -> cores:int list -> t
(** Manage the given cores: install tick timers and interrupt handlers on
    them.  Threads spawned into this scheduler only run on these cores. *)

val spawn : t -> name:string -> ?affinity:int -> ?weight:int -> Coro.t -> Kthread.t
(** Create a runnable thread and enqueue it (dispatching immediately if an
    idle managed core is available).  [weight] is the CFS load weight
    (1024 = nice 0; 15 = nice 19 / SCHED_BATCH-ish). *)

val wakeup : t -> Kthread.t -> unit
(** try_to_wake_up: make a blocked thread runnable, select a CPU, and apply
    the policy's wakeup-preemption rule.  Waking a non-blocked thread sets
    its [pending_wake] flag (futex semantics). *)

val current : t -> core:int -> Kthread.t option
val nr_runnable : t -> int
(** Ready + Running threads across all managed cores. *)

val wakeup_hist : t -> Histogram.t
(** Wakeup-to-first-instruction latency of every wakeup processed. *)

val context_switches : t -> int
val alive : t -> int
(** Threads not yet exited. *)
