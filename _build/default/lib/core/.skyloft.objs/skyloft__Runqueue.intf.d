lib/core/runqueue.mli: Task
