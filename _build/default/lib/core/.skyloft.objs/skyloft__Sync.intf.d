lib/core/sync.mli: Percpu Skyloft_sim Task
