lib/core/centralized.ml: App Array Hashtbl List Printf Runqueue Sched_ops Skyloft_hw Skyloft_kernel Skyloft_sim Skyloft_stats Task
