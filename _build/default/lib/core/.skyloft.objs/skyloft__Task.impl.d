lib/core/task.ml: Format Skyloft_sim
