lib/core/app.mli: Format Skyloft_sim Skyloft_stats
