lib/core/percpu.mli: App Sched_ops Skyloft_hw Skyloft_kernel Skyloft_sim Skyloft_stats Task
