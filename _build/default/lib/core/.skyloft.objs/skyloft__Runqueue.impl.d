lib/core/runqueue.ml: Hashtbl List Task
