lib/core/sched_ops.ml: Array Skyloft_sim Task
