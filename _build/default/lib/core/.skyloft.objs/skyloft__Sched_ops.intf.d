lib/core/sched_ops.mli: Skyloft_sim Task
