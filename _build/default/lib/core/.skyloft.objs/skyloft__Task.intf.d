lib/core/task.mli: Format Skyloft_sim
