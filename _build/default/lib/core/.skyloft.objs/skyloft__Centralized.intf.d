lib/core/centralized.mli: App Sched_ops Skyloft_hw Skyloft_kernel Skyloft_sim Task
