lib/core/percpu.ml: App Array Hashtbl List Sched_ops Skyloft_hw Skyloft_kernel Skyloft_sim Skyloft_stats Task
