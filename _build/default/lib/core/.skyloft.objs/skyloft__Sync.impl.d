lib/core/sync.ml: Percpu Queue Skyloft_sim Task
