lib/core/app.ml: Format Skyloft_sim Skyloft_stats
