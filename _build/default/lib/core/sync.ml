module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

(* Blocking operations need the caller's task handle, which only exists
   after spawn.  [deferred] postpones the operation to the task's first
   dispatch, by which time the spawner has filled the ref. *)
let deferred k = Coro.Yield k

let self_task self =
  match !self with
  | Some task -> task
  | None -> invalid_arg "Sync: blocking operation before the task handle is set"

module Sem = struct
  type t = { rt : Percpu.t; mutable count : int; waiters : Task.t Queue.t }

  let create rt count =
    if count < 0 then invalid_arg "Sync.Sem.create: negative count";
    { rt; count; waiters = Queue.create () }

  let wait t self k =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      k ()
    end
    else begin
      Queue.push (self_task self) t.waiters;
      (* woken by post: the permit was transferred directly *)
      Coro.Block k
    end

  let post t =
    match Queue.take_opt t.waiters with
    | Some task -> Percpu.wakeup t.rt task
    | None -> t.count <- t.count + 1

  let count t = t.count
  let waiting t = Queue.length t.waiters
end

module Waitgroup = struct
  type t = { rt : Percpu.t; mutable pending : int; waiters : Task.t Queue.t }

  let create rt () = { rt; pending = 0; waiters = Queue.create () }

  let add t n =
    if n < 0 then invalid_arg "Sync.Waitgroup.add: negative";
    t.pending <- t.pending + n

  let finish t =
    if t.pending <= 0 then invalid_arg "Sync.Waitgroup.finish: below zero";
    t.pending <- t.pending - 1;
    if t.pending = 0 then
      Queue.iter (fun task -> Percpu.wakeup t.rt task) t.waiters

  let wait t self k =
    if t.pending = 0 then k ()
    else begin
      Queue.push (self_task self) t.waiters;
      Coro.Block k
    end

  let pending t = t.pending
end

module Chan = struct
  type 'a t = {
    rt : Percpu.t;
    capacity : int;
    items : 'a Queue.t;
    senders : Task.t Queue.t;  (* blocked on full *)
    receivers : Task.t Queue.t;  (* blocked on empty *)
  }

  let create rt ~capacity =
    if capacity <= 0 then invalid_arg "Sync.Chan.create: capacity must be positive";
    {
      rt;
      capacity;
      items = Queue.create ();
      senders = Queue.create ();
      receivers = Queue.create ();
    }

  let rec send t self value k =
    if Queue.length t.items < t.capacity then begin
      Queue.push value t.items;
      (match Queue.take_opt t.receivers with
      | Some task -> Percpu.wakeup t.rt task
      | None -> ());
      k ()
    end
    else begin
      Queue.push (self_task self) t.senders;
      Coro.Block (fun () -> send t self value k)
    end

  let rec recv t self k =
    match Queue.take_opt t.items with
    | Some value ->
        (match Queue.take_opt t.senders with
        | Some task -> Percpu.wakeup t.rt task
        | None -> ());
        k value
    | None ->
        Queue.push (self_task self) t.receivers;
        Coro.Block (fun () -> recv t self k)

  let length t = Queue.length t.items
end
