module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

(** Synchronization primitives for simulated tasks.

    These are the blocking building blocks workloads need on top of the
    LibOS — counting semaphores, wait groups, and bounded channels — built
    from [task_block]/[task_wakeup] exactly like Skyloft's POSIX layer
    builds pthread primitives from the Table 2 operations.

    Because simulated thread bodies are {!Coro} descriptions, blocking
    operations take the calling task (as a [Task.t option ref], filled in
    at spawn) and the continuation to run once the operation completes.
    An operation that might block may only run once the handle is set;
    wrap a body's {e first} action in {!deferred}:

    {[
      let sem = Sync.Sem.create rt 0 in
      let self = ref None in
      let body = Sync.deferred (fun () ->
          Sync.Sem.wait sem self (fun () -> (* ...acquired... *) Coro.Exit))
      in
      self := Some (Percpu.spawn rt app ~name:"worker" body)
    ]} *)

val deferred : (unit -> Coro.t) -> Coro.t
(** Postpone building the body until the task's first dispatch (after the
    spawner has stored the task handle). *)

module Sem : sig
  type t

  val create : Percpu.t -> int -> t
  (** Counting semaphore with the given initial count (>= 0). *)

  val wait : t -> Task.t option ref -> (unit -> Coro.t) -> Coro.t
  (** Acquire: decrement if positive, otherwise block until a {!post}.
      The continuation runs once acquired. *)

  val post : t -> unit
  (** Release: wake the longest-waiting task, or bank the count. *)

  val count : t -> int
  val waiting : t -> int
end

module Waitgroup : sig
  type t

  val create : Percpu.t -> unit -> t
  val add : t -> int -> unit
  val finish : t -> unit
  (** Mark one unit done; raises [Invalid_argument] below zero. *)

  val wait : t -> Task.t option ref -> (unit -> Coro.t) -> Coro.t
  (** Block until the counter reaches zero (immediate if already zero). *)

  val pending : t -> int
end

module Chan : sig
  type 'a t

  val create : Percpu.t -> capacity:int -> 'a t

  val send : 'a t -> Task.t option ref -> 'a -> (unit -> Coro.t) -> Coro.t
  (** Enqueue the value, blocking while the channel is full. *)

  val recv : 'a t -> Task.t option ref -> ('a -> Coro.t) -> Coro.t
  (** Dequeue a value, blocking while the channel is empty. *)

  val length : 'a t -> int
end
