(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5).

   Layout:
   - Bechamel microbenchmarks measure this repository's real code: the
     effects-based uthread operations (Table 7's Skyloft column) and the
     simulator's hot primitives.
   - Each figure/table section then runs the corresponding simulation
     experiment and prints measured-vs-paper tables (EXPERIMENTS.md records
     the comparison).

   SKYLOFT_BENCH=quick|default|full selects the per-point simulated
   duration (default: default). *)

open Bechamel
open Toolkit
module E = Skyloft_experiments
module U = Skyloft_uthread.Uthread

(* ---- Bechamel plumbing ------------------------------------------------- *)

let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
let instances = Instance.[ monotonic_clock ]

let run_bench tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  match Analyze.merge ols instances results with
  | results -> results

let estimate results name =
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> nan
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | None -> nan
      | Some ols_result -> (
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | Some [] | None -> nan))

(* ---- Table 7: real uthread operation costs ----------------------------- *)

(* Each staged function performs [ops_per_run] operations plus one
   Uthread.run setup; the per-operation cost is the slope divided by the
   batch size (the run overhead is amortised). *)
let ops_per_run = 1000

let bench_yield () =
  U.run (fun () ->
      let t =
        U.spawn (fun () ->
            for _ = 1 to ops_per_run do
              U.yield ()
            done)
      in
      U.join t)

let bench_spawn () =
  U.run (fun () ->
      for _ = 1 to ops_per_run do
        ignore (U.spawn (fun () -> ()))
      done)

let bench_mutex () =
  let m = U.Mutex.create () in
  U.run (fun () ->
      for _ = 1 to ops_per_run do
        U.Mutex.lock m;
        U.Mutex.unlock m
      done)

let bench_condvar () =
  let m = U.Mutex.create () and cv = U.Condvar.create () in
  U.run (fun () ->
      let waiter =
        U.spawn (fun () ->
            U.Mutex.lock m;
            for _ = 1 to ops_per_run do
              U.Condvar.wait cv m
            done;
            U.Mutex.unlock m)
      in
      for _ = 1 to ops_per_run do
        U.yield ();
        U.Condvar.signal cv
      done;
      U.join waiter)

let table7_tests =
  Test.make_grouped ~name:"table7"
    [
      Test.make ~name:"yield" (Staged.stage bench_yield);
      Test.make ~name:"spawn" (Staged.stage bench_spawn);
      Test.make ~name:"mutex" (Staged.stage bench_mutex);
      Test.make ~name:"condvar" (Staged.stage bench_condvar);
    ]

let print_table7_measured () =
  E.Report.section
    "Table 7 (measured): real effects-based uthread operations (Bechamel)";
  let results = run_bench table7_tests in
  let per_op name = estimate results (Printf.sprintf "table7/%s" name) /. float_of_int ops_per_run in
  let paper = [ ("yield", 37); ("spawn", 191); ("mutex", 27); ("condvar", 86) ] in
  E.Report.table
    ~header:[ "operation"; "measured ns/op (this host)"; "paper Skyloft ns" ]
    (List.map
       (fun (name, p) ->
         [ name; Printf.sprintf "%.0f" (per_op name); string_of_int p ])
       paper);
  E.Report.note "absolute values depend on this host's CPU and the OCaml runtime;";
  E.Report.note "the claim preserved is user-level ops at tens-to-hundreds of ns,";
  E.Report.note "orders of magnitude below pthread spawn (15,418 ns) and condvar (2,532 ns)"

(* ---- simulator primitive microbenchmarks ------------------------------- *)

let bench_eventq () =
  let module Eventq = Skyloft_sim.Eventq in
  let q = Eventq.create () in
  for i = 1 to 1000 do
    ignore (Eventq.schedule q ~at:i ())
  done;
  let rec drain () = match Eventq.pop q with Some _ -> drain () | None -> () in
  drain ()

let bench_engine_events () =
  let module Engine = Skyloft_sim.Engine in
  let engine = Engine.create () in
  for i = 1 to 1000 do
    ignore (Engine.at engine i (fun () -> ()))
  done;
  Engine.run engine

let sim_tests =
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"eventq-1k" (Staged.stage bench_eventq);
      Test.make ~name:"engine-1k" (Staged.stage bench_engine_events);
    ]

let print_sim_bench () =
  E.Report.section "Simulator primitives (Bechamel; cost per simulated event)";
  let results = run_bench sim_tests in
  E.Report.table
    ~header:[ "primitive"; "ns per event" ]
    [
      [ "eventq schedule+pop"; Printf.sprintf "%.0f" (estimate results "sim/eventq-1k" /. 1000.) ];
      [ "engine schedule+fire"; Printf.sprintf "%.0f" (estimate results "sim/engine-1k" /. 1000.) ];
    ]

(* ---- main --------------------------------------------------------------- *)

let () =
  let config =
    match Sys.getenv_opt "SKYLOFT_BENCH" with
    | Some "quick" -> E.Config.quick
    | Some "full" -> E.Config.full
    | Some "default" | None | Some _ -> E.Config.default
  in
  Printf.printf "Skyloft reproduction benchmark harness\n";
  Printf.printf "(simulated duration per data point: %s; seed %d)\n"
    (Format.asprintf "%a" Skyloft_sim.Time.pp config.E.Config.duration)
    config.E.Config.seed;

  (* Microbenchmarks (real code measured on this host). *)
  print_table7_measured ();
  print_sim_bench ();

  (* Tables. *)
  ignore (E.Tables.print_table4 ());
  E.Tables.print_table5 ();
  ignore (E.Tables.print_table6 ());
  ignore (E.Tables.print_table7_model ());
  E.Tables.print_appswitch ();

  (* Figures. *)
  ignore (E.Fig5.print config);
  ignore (E.Fig6.print config);
  ignore (E.Fig7.print_a config);
  let b = E.Fig7.print_b config in
  ignore (E.Fig7.print_c config b);
  ignore (E.Fig8.print_a config);
  ignore (E.Fig8.print_b config);

  (* Ablations of the design choices (DESIGN.md §5). *)
  E.Ablations.print config;
  Printf.printf "\nAll tables and figures regenerated.\n"
