(* Tests for the simulated-runtime synchronization primitives (Sync) and
   the POSIX facade over real uthreads (Pthread_compat). *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module Sync = Skyloft.Sync
module Task = Skyloft.Task
module P = Skyloft_uthread.Pthread_compat

let check = Alcotest.check

let make_rt ?(cores = 2) () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:(List.init cores Fun.id) ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"sync" in
  (engine, rt, app)

(* ---- Sem ---- *)

let test_sem_immediate_acquire () =
  let engine, rt, app = make_rt () in
  let sem = Sync.Sem.create rt 2 in
  let acquired = ref 0 in
  for _ = 1 to 2 do
    let self = ref None in
    let body =
      Sync.deferred (fun () ->
          Sync.Sem.wait sem self (fun () ->
              incr acquired;
              Coro.Exit))
    in
    self := Some (Percpu.spawn rt app ~name:"w" body)
  done;
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.int "both acquired immediately" 2 !acquired;
  check Alcotest.int "count drained" 0 (Sync.Sem.count sem)

let test_sem_blocks_until_post () =
  let engine, rt, app = make_rt () in
  let sem = Sync.Sem.create rt 0 in
  let acquired_at = ref 0 in
  let self = ref None in
  let body =
    Sync.deferred (fun () ->
        Sync.Sem.wait sem self (fun () ->
            acquired_at := Engine.now engine;
            Coro.Exit))
  in
  self := Some (Percpu.spawn rt app ~name:"w" body);
  ignore (Engine.at engine (Time.us 100) (fun () -> Sync.Sem.post sem));
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "acquired only after post" true (!acquired_at >= Time.us 100)

let test_sem_fifo_wakeups () =
  let engine, rt, app = make_rt ~cores:4 () in
  let sem = Sync.Sem.create rt 0 in
  let order = ref [] in
  for i = 1 to 3 do
    let self = ref None in
    let body =
      Sync.deferred (fun () ->
          Sync.Sem.wait sem self (fun () ->
              order := i :: !order;
              Coro.Exit))
    in
    self := Some (Percpu.spawn rt app ~name:(string_of_int i) body)
  done;
  ignore
    (Engine.at engine (Time.us 10) (fun () ->
         Sync.Sem.post sem;
         Sync.Sem.post sem;
         Sync.Sem.post sem));
  Engine.run ~until:(Time.ms 1) engine;
  check (Alcotest.list Alcotest.int) "FIFO order" [ 1; 2; 3 ] (List.rev !order)

(* ---- Waitgroup ---- *)

let test_waitgroup () =
  let engine, rt, app = make_rt ~cores:4 () in
  let wg = Sync.Waitgroup.create rt () in
  Sync.Waitgroup.add wg 3;
  let done_at = ref 0 and finish_times = ref [] in
  for i = 1 to 3 do
    ignore
      (Percpu.spawn rt app ~name:(string_of_int i)
         (Coro.Compute
            ( Time.us (i * 10),
              fun () ->
                finish_times := Engine.now engine :: !finish_times;
                Sync.Waitgroup.finish wg;
                Coro.Exit )))
  done;
  let self = ref None in
  let body =
    Sync.deferred (fun () ->
        Sync.Waitgroup.wait wg self (fun () ->
            done_at := Engine.now engine;
            Coro.Exit))
  in
  self := Some (Percpu.spawn rt app ~name:"waiter" body);
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "waiter resumed after all finishes" true
    (!done_at >= Time.us 30);
  check Alcotest.int "pending zero" 0 (Sync.Waitgroup.pending wg)

let test_waitgroup_wait_when_zero () =
  let engine, rt, app = make_rt () in
  let wg = Sync.Waitgroup.create rt () in
  let ran = ref false in
  let self = ref None in
  let body =
    Sync.deferred (fun () ->
        Sync.Waitgroup.wait wg self (fun () -> ran := true; Coro.Exit))
  in
  self := Some (Percpu.spawn rt app ~name:"w" body);
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "immediate when zero" true !ran

let test_waitgroup_underflow () =
  let _, rt, _ = make_rt () in
  let wg = Sync.Waitgroup.create rt () in
  check Alcotest.bool "underflow raises" true
    (try
       Sync.Waitgroup.finish wg;
       false
     with Invalid_argument _ -> true)

(* ---- Chan ---- *)

let test_chan_pipeline () =
  let engine, rt, app = make_rt ~cores:2 () in
  let chan = Sync.Chan.create rt ~capacity:2 in
  let received = ref [] in
  (* producer: send 5 values with some compute between *)
  let pself = ref None in
  let rec produce i () =
    if i > 5 then Coro.Exit
    else
      Coro.Compute
        ( Time.us 5,
          fun () -> Sync.Chan.send chan pself i (produce (i + 1)) )
  in
  pself := Some (Percpu.spawn rt app ~name:"producer" (Sync.deferred (produce 1)));
  (* consumer: receive 5 values, slower than the producer *)
  let cself = ref None in
  let rec consume n () =
    if n = 0 then Coro.Exit
    else
      Sync.Chan.recv chan cself (fun v ->
          received := v :: !received;
          Coro.Compute (Time.us 20, consume (n - 1)))
  in
  cself := Some (Percpu.spawn rt app ~name:"consumer" (Sync.deferred (consume 5)));
  Engine.run ~until:(Time.ms 2) engine;
  check (Alcotest.list Alcotest.int) "in order, none lost" [ 1; 2; 3; 4; 5 ]
    (List.rev !received);
  check Alcotest.int "channel drained" 0 (Sync.Chan.length chan)

(* ---- Pthread_compat ---- *)

let test_pthread_facade () =
  let module U = Skyloft_uthread.Uthread in
  let log = ref [] in
  U.run (fun () ->
      let m = P.pthread_mutex_init () in
      let cv = P.pthread_cond_init () in
      let ready = ref false in
      let t =
        P.pthread_create (fun () ->
            P.pthread_mutex_lock m;
            while not !ready do
              P.pthread_cond_wait cv m
            done;
            log := "woken" :: !log;
            P.pthread_mutex_unlock m)
      in
      P.pthread_yield ();
      P.pthread_mutex_lock m;
      ready := true;
      P.pthread_cond_signal cv;
      P.pthread_mutex_unlock m;
      P.pthread_join t;
      log := "joined" :: !log);
  check (Alcotest.list Alcotest.string) "posix flow" [ "woken"; "joined" ]
    (List.rev !log)

let test_pthread_trylock () =
  let module U = Skyloft_uthread.Uthread in
  U.run (fun () ->
      let m = P.pthread_mutex_init () in
      check Alcotest.bool "trylock" true (P.pthread_mutex_trylock m);
      check Alcotest.bool "second fails" false (P.pthread_mutex_trylock m);
      P.pthread_mutex_unlock m)

let suite =
  [
    Alcotest.test_case "sem: immediate" `Quick test_sem_immediate_acquire;
    Alcotest.test_case "sem: blocks until post" `Quick test_sem_blocks_until_post;
    Alcotest.test_case "sem: FIFO wakeups" `Quick test_sem_fifo_wakeups;
    Alcotest.test_case "waitgroup: waits for all" `Quick test_waitgroup;
    Alcotest.test_case "waitgroup: zero immediate" `Quick test_waitgroup_wait_when_zero;
    Alcotest.test_case "waitgroup: underflow" `Quick test_waitgroup_underflow;
    Alcotest.test_case "chan: pipeline" `Quick test_chan_pipeline;
    Alcotest.test_case "pthread: facade" `Quick test_pthread_facade;
    Alcotest.test_case "pthread: trylock" `Quick test_pthread_trylock;
  ]
