(* Cross-layer integration tests: full stacks wired together the way the
   bench harness uses them, exercising interactions no single-module test
   covers. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Histogram = Skyloft_stats.Histogram
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module App = Skyloft.App
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen
module Udp_server = Skyloft_apps.Udp_server

let check = Alcotest.check

(* NIC -> RSS -> rings -> work-stealing runtime -> preemption -> summary:
   the whole Figure 8b pipeline at small scale, checking end-to-end
   accounting invariants rather than one layer. *)
let test_full_pipeline_accounting () =
  let engine = Engine.create ~seed:3 () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let cores = [ 0; 1; 2; 3 ] in
  let rt =
    Percpu.create machine kmod ~cores ~timer_hz:100_000
      (Skyloft_policies.Work_stealing.create ~quantum:(Time.us 5) ())
  in
  let app = Percpu.create_app rt ~name:"kv" in
  let nic = Nic.create engine ~queues:4 () in
  Udp_server.attach rt app nic ~cores;
  let rng = Engine.split_rng engine in
  let offered = ref 0 in
  Loadgen.poisson engine ~rng ~rate_rps:30_000.0
    ~service:Skyloft_apps.Rocksdb.service ~duration:(Time.ms 50) (fun pkt ->
      incr offered;
      Nic.rx nic pkt);
  Engine.run ~until:(Time.ms 120) engine;
  (* conservation: everything offered was received, nothing lost *)
  check Alcotest.int "nic received all" !offered (Nic.received nic);
  check Alcotest.int "nothing dropped" 0 (Nic.drops nic);
  check Alcotest.int "everything served" !offered (Summary.requests app.App.summary);
  (* ~44% load of 4 cores: busy time is bounded by offered work + overheads *)
  check Alcotest.bool "busy time sane" true
    (app.App.busy_ns > 0 && app.App.busy_ns < 4 * Time.ms 120);
  (* preemption fired on the 591us scans *)
  check Alcotest.bool "scans preempted" true (Percpu.preemptions rt > 0);
  (* timer interrupts were delivered through the UINTR path on every core *)
  List.iter
    (fun c ->
      check Alcotest.bool "user interrupts on core" true
        (Machine.user_interrupts_delivered (Machine.core machine c) > 0))
    cores

(* Three applications on one runtime: per-app accounting sums to the
   runtime total, and the kernel module never violates the binding rule
   (it would raise). *)
let test_three_apps_share_cores () =
  let engine = Engine.create ~seed:5 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1 ]
      (Skyloft_policies.Rr.create ~slice:(Time.us 25) ())
  in
  let apps = List.init 3 (fun i -> Percpu.create_app rt ~name:(Printf.sprintf "app%d" i)) in
  List.iteri
    (fun i app ->
      for j = 1 to 5 do
        ignore
          (Engine.at engine (Time.us (10 * ((i * 5) + j))) (fun () ->
               ignore
                 (Percpu.spawn rt app
                    ~name:(Printf.sprintf "t%d-%d" i j)
                    (Coro.compute_then_exit (Time.us 200)))))
      done)
    apps;
  Engine.run ~until:(Time.ms 20) engine;
  List.iter
    (fun app ->
      check Alcotest.int (app.App.name ^ " all done") 5 app.App.completed;
      check Alcotest.bool (app.App.name ^ " got cpu") true (app.App.busy_ns > 0))
    apps;
  check Alcotest.bool "cross-app switches happened" true (Percpu.app_switches rt > 3);
  let total = List.fold_left (fun acc app -> acc + app.App.busy_ns) 0 apps in
  check Alcotest.bool "per-app busy sums below capacity" true
    (total <= 2 * Time.ms 20)

(* The centralized runtime and the per-CPU runtime coexist on disjoint
   cores of one machine (two independent Skyloft deployments). *)
let test_two_runtimes_one_machine () =
  let engine = Engine.create ~seed:9 () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let rt1 =
    Percpu.create machine kmod ~cores:[ 0; 1 ] (Skyloft_policies.Fifo.create ())
  in
  let rt2 =
    Centralized.create machine kmod ~dispatcher_core:2 ~worker_cores:[ 3; 4 ]
      ~quantum:(Time.us 30)
      (Skyloft_policies.Shinjuku.create ())
  in
  let a1 = Percpu.create_app rt1 ~name:"percpu-app" in
  let a2 = Centralized.create_app rt2 ~name:"central-app" in
  for _ = 1 to 10 do
    ignore (Percpu.spawn rt1 a1 ~name:"p" (Coro.compute_then_exit (Time.us 50)));
    ignore
      (Centralized.submit rt2 a2 ~name:"c" ~service:(Time.us 50)
         (Coro.compute_then_exit (Time.us 50)))
  done;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "percpu served" 10 a1.App.completed;
  check Alcotest.int "centralized served" 10 a2.App.completed

(* Determinism across the whole stack: identical seeds give identical
   percentile results for a nontrivial networked run. *)
let test_stack_determinism () =
  let run () =
    let engine = Engine.create ~seed:17 () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let cores = [ 0; 1 ] in
    let rt =
      Percpu.create machine kmod ~cores ~timer_hz:100_000
        (Skyloft_policies.Work_stealing.create ~quantum:(Time.us 10) ())
    in
    let app = Percpu.create_app rt ~name:"kv" in
    let nic = Nic.create engine ~queues:2 () in
    Udp_server.attach rt app nic ~cores;
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:20_000.0
      ~service:(Dist.Bimodal { p_short = 0.9; short = Time.us 5; long = Time.us 300 })
      ~duration:(Time.ms 30) (fun pkt -> Nic.rx nic pkt);
    Engine.run ~until:(Time.ms 60) engine;
    ( Summary.requests app.App.summary,
      Summary.latency_p app.App.summary 50.0,
      Summary.latency_p app.App.summary 99.9,
      Percpu.preemptions rt,
      Engine.events_fired engine )
  in
  check
    (Alcotest.testable
       (fun ppf (a, b, c, d, e) -> Format.fprintf ppf "(%d,%d,%d,%d,%d)" a b c d e)
       ( = ))
    "bit-identical reruns" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "pipeline accounting" `Quick test_full_pipeline_accounting;
    Alcotest.test_case "three apps share cores" `Quick test_three_apps_share_cores;
    Alcotest.test_case "two runtimes, one machine" `Quick test_two_runtimes_one_machine;
    Alcotest.test_case "stack determinism" `Quick test_stack_determinism;
  ]
