(* Tests for the network substrate: RSS, rings, NIC, load generator. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Packet = Skyloft_net.Packet
module Rss = Skyloft_net.Rss
module Ring = Skyloft_net.Ring
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen

let check = Alcotest.check

let test_rss_deterministic () =
  let q1 = Rss.queue_of_flow ~queues:8 12345 in
  let q2 = Rss.queue_of_flow ~queues:8 12345 in
  check Alcotest.int "same flow same queue" q1 q2;
  check Alcotest.bool "in range" true (q1 >= 0 && q1 < 8)

let test_rss_spreads () =
  (* Many flows should hit all queues roughly evenly. *)
  let counts = Array.make 4 0 in
  for flow = 0 to 9_999 do
    let q = Rss.queue_of_flow ~queues:4 flow in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "roughly uniform" true (c > 2_000 && c < 3_000))
    counts

let pkt ?(flow = 1) () = Packet.create ~arrival:0 ~service:100 ~flow ~kind:"req"

let test_ring_fifo_and_overflow () =
  let ring = Ring.create ~capacity:2 in
  check Alcotest.bool "push 1" true (Ring.push ring (pkt ~flow:1 ()));
  check Alcotest.bool "push 2" true (Ring.push ring (pkt ~flow:2 ()));
  check Alcotest.bool "push 3 drops" false (Ring.push ring (pkt ~flow:3 ()));
  check Alcotest.int "dropped" 1 (Ring.dropped ring);
  check Alcotest.int "pop fifo" 1
    (match Ring.pop ring with Some p -> p.Packet.flow | None -> -1);
  check Alcotest.int "pop fifo 2" 2
    (match Ring.pop ring with Some p -> p.Packet.flow | None -> -1);
  check (Alcotest.option Alcotest.unit) "empty" None (Option.map ignore (Ring.pop ring))

let test_ring_wraparound () =
  let ring = Ring.create ~capacity:3 in
  for round = 1 to 5 do
    check Alcotest.bool "push" true (Ring.push ring (pkt ~flow:round ()));
    check Alcotest.int "pop" round
      (match Ring.pop ring with Some p -> p.Packet.flow | None -> -1)
  done

let test_nic_delivery () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:2 ~poll_cost:100 () in
  let got = ref [] in
  for q = 0 to 1 do
    Nic.on_packet nic ~queue:q (fun p -> got := (q, p.Packet.flow, Engine.now engine) :: !got)
  done;
  let p = pkt ~flow:7 () in
  let expect_q = Rss.queue_of_flow ~queues:2 7 in
  Nic.rx nic p;
  Engine.run engine;
  match !got with
  | [ (q, flow, at) ] ->
      check Alcotest.int "steered by RSS" expect_q q;
      check Alcotest.int "flow" 7 flow;
      check Alcotest.int "after poll cost" 100 at
  | _ -> Alcotest.fail "expected one packet"

let test_nic_drops_without_consumer () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:1 ~ring_capacity:4 () in
  Nic.rx nic (pkt ());
  Engine.run engine;
  (* no consumer: packet popped into the void; no crash, no drop counted *)
  check Alcotest.int "received" 1 (Nic.received nic)

let test_nic_ring_overflow_counts () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:1 ~ring_capacity:2 () in
  (* No consumer drain scheduled yet at rx time: push 5 at one instant *)
  for i = 1 to 5 do
    Nic.rx nic (pkt ~flow:i ())
  done;
  check Alcotest.int "3 dropped" 3 (Nic.drops nic)

let test_loadgen_poisson_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:13 in
  let count = ref 0 in
  Loadgen.poisson engine ~rng ~rate_rps:100_000.0 ~service:(Dist.Constant 100)
    ~duration:(Time.ms 100) (fun _ -> incr count);
  Engine.run engine;
  (* 100k rps for 100ms = ~10k arrivals; Poisson sd ~ 100 *)
  check Alcotest.bool "arrival count near 10k" true (abs (!count - 10_000) < 500)

let test_loadgen_poisson_stops () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let last = ref 0 in
  Loadgen.poisson engine ~rng ~rate_rps:1_000_000.0 ~service:(Dist.Constant 1)
    ~duration:(Time.ms 1) (fun p -> last := p.Packet.arrival);
  Engine.run engine;
  check Alcotest.bool "no arrivals after duration" true (!last <= Time.ms 1)

let test_loadgen_deterministic () =
  let arrivals seed =
    let engine = Engine.create () in
    let rng = Rng.create ~seed in
    let acc = ref [] in
    Loadgen.poisson engine ~rng ~rate_rps:10_000.0 ~service:(Dist.Constant 5)
      ~duration:(Time.ms 10) (fun p -> acc := p.Packet.arrival :: !acc);
    Engine.run engine;
    !acc
  in
  check (Alcotest.list Alcotest.int) "same seed, same arrivals" (arrivals 3) (arrivals 3);
  check Alcotest.bool "different seed differs" true (arrivals 3 <> arrivals 4)

let test_loadgen_uniform () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let at = ref [] in
  Loadgen.uniform_closed engine ~rng ~interval:(Time.us 10) ~count:5
    ~service:(Dist.Constant 3) (fun p -> at := p.Packet.arrival :: !at);
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "fixed spacing"
    [ 0; 10_000; 20_000; 30_000; 40_000 ]
    (List.rev !at)

let suite =
  [
    Alcotest.test_case "rss: deterministic" `Quick test_rss_deterministic;
    Alcotest.test_case "rss: spreads" `Quick test_rss_spreads;
    Alcotest.test_case "ring: fifo + overflow" `Quick test_ring_fifo_and_overflow;
    Alcotest.test_case "ring: wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "nic: delivery" `Quick test_nic_delivery;
    Alcotest.test_case "nic: no consumer" `Quick test_nic_drops_without_consumer;
    Alcotest.test_case "nic: overflow" `Quick test_nic_ring_overflow_counts;
    Alcotest.test_case "loadgen: poisson rate" `Slow test_loadgen_poisson_rate;
    Alcotest.test_case "loadgen: stops at duration" `Quick test_loadgen_poisson_stops;
    Alcotest.test_case "loadgen: deterministic" `Quick test_loadgen_deterministic;
    Alcotest.test_case "loadgen: uniform" `Quick test_loadgen_uniform;
  ]
