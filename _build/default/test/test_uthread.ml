(* Tests for the real effects-based user-level threading library. *)

module U = Skyloft_uthread.Uthread

let check = Alcotest.check

let test_run_main () =
  let ran = ref false in
  U.run (fun () -> ran := true);
  check Alcotest.bool "main ran" true !ran

let test_spawn_join () =
  let log = ref [] in
  U.run (fun () ->
      let t = U.spawn (fun () -> log := "child" :: !log) in
      U.join t;
      log := "after-join" :: !log);
  check (Alcotest.list Alcotest.string) "join ordering" [ "child"; "after-join" ]
    (List.rev !log)

let test_join_finished_thread () =
  U.run (fun () ->
      let t = U.spawn (fun () -> ()) in
      U.yield ();
      check Alcotest.bool "finished" true (U.finished t);
      U.join t (* immediate *))

let test_yield_interleaves () =
  let log = ref [] in
  U.run (fun () ->
      let emit tag n =
        for i = 1 to n do
          log := Printf.sprintf "%s%d" tag i :: !log;
          U.yield ()
        done
      in
      let a = U.spawn (fun () -> emit "a" 3) in
      let b = U.spawn (fun () -> emit "b" 3) in
      U.join a;
      U.join b);
  check (Alcotest.list Alcotest.string) "round robin"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_self_id_unique () =
  let ids = ref [] in
  U.run (fun () ->
      let ts =
        List.init 5 (fun _ -> U.spawn (fun () -> ids := U.self_id () :: !ids))
      in
      List.iter U.join ts);
  let sorted = List.sort_uniq compare !ids in
  check Alcotest.int "5 distinct ids" 5 (List.length sorted)

let test_many_threads () =
  let count = ref 0 in
  U.run (fun () ->
      let ts = List.init 10_000 (fun _ -> U.spawn (fun () -> incr count)) in
      List.iter U.join ts);
  check Alcotest.int "10k threads" 10_000 !count

let test_mutex_mutual_exclusion () =
  let m = U.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  U.run (fun () ->
      let worker () =
        U.Mutex.with_lock m (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            U.yield ();
            (* still exclusive across the yield *)
            decr inside)
      in
      let ts = List.init 10 (fun _ -> U.spawn worker) in
      List.iter U.join ts);
  check Alcotest.int "never two inside" 1 !max_inside

let test_mutex_fifo_handoff () =
  let m = U.Mutex.create () in
  let order = ref [] in
  U.run (fun () ->
      U.Mutex.lock m;
      let ts =
        List.init 3 (fun i ->
            U.spawn (fun () ->
                U.Mutex.lock m;
                order := i :: !order;
                U.Mutex.unlock m))
      in
      U.yield ();
      (* all three are queued on the mutex in spawn order *)
      U.Mutex.unlock m;
      List.iter U.join ts);
  check (Alcotest.list Alcotest.int) "FIFO" [ 0; 1; 2 ] (List.rev !order)

let test_mutex_try_lock () =
  U.run (fun () ->
      let m = U.Mutex.create () in
      check Alcotest.bool "first try succeeds" true (U.Mutex.try_lock m);
      check Alcotest.bool "second try fails" false (U.Mutex.try_lock m);
      U.Mutex.unlock m;
      check Alcotest.bool "after unlock succeeds" true (U.Mutex.try_lock m);
      U.Mutex.unlock m)

let test_mutex_unlock_unlocked () =
  U.run (fun () ->
      let m = U.Mutex.create () in
      check Alcotest.bool "raises" true
        (try
           U.Mutex.unlock m;
           false
         with Invalid_argument _ -> true))

let test_condvar_signal () =
  let m = U.Mutex.create () and cv = U.Condvar.create () in
  let ready = ref false and got = ref false in
  U.run (fun () ->
      let waiter =
        U.spawn (fun () ->
            U.Mutex.lock m;
            while not !ready do
              U.Condvar.wait cv m
            done;
            got := true;
            U.Mutex.unlock m)
      in
      U.yield ();
      U.Mutex.lock m;
      ready := true;
      U.Condvar.signal cv;
      U.Mutex.unlock m;
      U.join waiter);
  check Alcotest.bool "condvar woke waiter" true !got

let test_condvar_broadcast () =
  let m = U.Mutex.create () and cv = U.Condvar.create () in
  let go = ref false and woken = ref 0 in
  U.run (fun () ->
      let ts =
        List.init 5 (fun _ ->
            U.spawn (fun () ->
                U.Mutex.lock m;
                while not !go do
                  U.Condvar.wait cv m
                done;
                incr woken;
                U.Mutex.unlock m))
      in
      U.yield ();
      U.Mutex.lock m;
      go := true;
      U.Condvar.broadcast cv;
      U.Mutex.unlock m;
      List.iter U.join ts);
  check Alcotest.int "all woken" 5 !woken

let test_condvar_signal_no_waiter () =
  U.run (fun () ->
      let cv = U.Condvar.create () in
      U.Condvar.signal cv;
      U.Condvar.broadcast cv)

let test_deadlock_detection () =
  check Alcotest.bool "deadlock raises" true
    (try
       U.run (fun () ->
           let m = U.Mutex.create () in
           U.Mutex.lock m;
           (* lock it again: self-deadlock *)
           U.Mutex.lock m);
       false
     with U.Deadlock _ -> true)

let test_producer_consumer () =
  (* Bounded buffer with two condvars: a classic integration check. *)
  let m = U.Mutex.create () in
  let not_full = U.Condvar.create () and not_empty = U.Condvar.create () in
  let buf = Queue.create () and capacity = 4 in
  let produced = 200 and consumed = ref 0 and sum = ref 0 in
  U.run (fun () ->
      let producer =
        U.spawn (fun () ->
            for i = 1 to produced do
              U.Mutex.lock m;
              while Queue.length buf >= capacity do
                U.Condvar.wait not_full m
              done;
              Queue.push i buf;
              U.Condvar.signal not_empty;
              U.Mutex.unlock m
            done)
      in
      let consumer =
        U.spawn (fun () ->
            while !consumed < produced do
              U.Mutex.lock m;
              while Queue.is_empty buf do
                U.Condvar.wait not_empty m
              done;
              sum := !sum + Queue.pop buf;
              incr consumed;
              U.Condvar.signal not_full;
              U.Mutex.unlock m
            done)
      in
      U.join producer;
      U.join consumer);
  check Alcotest.int "all items" produced !consumed;
  check Alcotest.int "sum" (produced * (produced + 1) / 2) !sum

let test_operations_outside_run () =
  check Alcotest.bool "yield outside run raises" true
    (try
       U.yield ();
       false
     with Invalid_argument _ | Effect.Unhandled _ -> true)

let suite =
  [
    Alcotest.test_case "run main" `Quick test_run_main;
    Alcotest.test_case "spawn + join" `Quick test_spawn_join;
    Alcotest.test_case "join finished" `Quick test_join_finished_thread;
    Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
    Alcotest.test_case "self ids unique" `Quick test_self_id_unique;
    Alcotest.test_case "10k threads" `Quick test_many_threads;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
    Alcotest.test_case "mutex FIFO" `Quick test_mutex_fifo_handoff;
    Alcotest.test_case "mutex try_lock" `Quick test_mutex_try_lock;
    Alcotest.test_case "mutex unlock unlocked" `Quick test_mutex_unlock_unlocked;
    Alcotest.test_case "condvar signal" `Quick test_condvar_signal;
    Alcotest.test_case "condvar broadcast" `Quick test_condvar_broadcast;
    Alcotest.test_case "condvar no waiter" `Quick test_condvar_signal_no_waiter;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
    Alcotest.test_case "ops outside run" `Quick test_operations_outside_run;
  ]
