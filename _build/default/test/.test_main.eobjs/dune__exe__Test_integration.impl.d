test/test_integration.ml: Alcotest Format List Printf Skyloft Skyloft_apps Skyloft_hw Skyloft_kernel Skyloft_net Skyloft_policies Skyloft_sim Skyloft_stats
