test/test_policies.ml: Alcotest Array Fun List Printf Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim
