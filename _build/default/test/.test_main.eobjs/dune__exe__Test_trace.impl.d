test/test_trace.ml: Alcotest Filename Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_stats Str String Sys
