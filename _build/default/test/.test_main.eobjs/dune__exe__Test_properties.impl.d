test/test_properties.ml: Gen List Printf QCheck QCheck_alcotest Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_stats
