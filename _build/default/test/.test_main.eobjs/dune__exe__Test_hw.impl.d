test/test_hw.ml: Alcotest List Option Printf Skyloft_hw Skyloft_sim
