test/test_net.ml: Alcotest Array List Option Skyloft_net Skyloft_sim
