test/test_uthread.ml: Alcotest Effect List Printf Queue Skyloft_uthread
