test/test_kernel.ml: Alcotest Fun List Option Printf Skyloft_hw Skyloft_kernel Skyloft_sim Skyloft_stats
