test/test_stats.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Skyloft_stats
