test/test_sync.ml: Alcotest Fun List Skyloft Skyloft_hw Skyloft_kernel Skyloft_policies Skyloft_sim Skyloft_uthread
