test/test_core.ml: Alcotest Fun List QCheck QCheck_alcotest Skyloft Skyloft_hw Skyloft_kernel Skyloft_sim Skyloft_stats
