(* Tests for the application layer: runner abstraction, schbench model,
   UDP server plumbing, workload definitions, batch app. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Linux = Skyloft_kernel.Linux
module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Runner = Skyloft_apps.Runner
module Schbench = Skyloft_apps.Schbench
module Udp_server = Skyloft_apps.Udp_server
module Memcached = Skyloft_apps.Memcached
module Rocksdb = Skyloft_apps.Rocksdb
module Batch = Skyloft_apps.Batch
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen

let check = Alcotest.check

let make_percpu ?(cores = 4) ?(preemption = true) ctor =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt = Percpu.create machine kmod ~cores:(List.init cores Fun.id) ~preemption ctor in
  (engine, machine, rt)

(* ---- Runner ---- *)

let test_runner_of_linux () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let linux = Linux.create machine Linux.cfs_default ~cores:[ 0; 1 ] in
  let runner = Runner.of_linux linux in
  let ran = ref false in
  let h = runner.spawn ~name:"t" (Coro.Compute (Time.us 1, fun () -> ran := true; Coro.Exit)) in
  runner.set_track_wakeup h false;
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "linux runner ran" true !ran

let test_runner_of_percpu () =
  let engine, _, rt = make_percpu (Skyloft_policies.Fifo.create ()) in
  let app = Percpu.create_app rt ~name:"a" in
  let runner = Runner.of_percpu rt app in
  let woke = ref false in
  let h = runner.spawn ~name:"s" (Coro.Block (fun () -> woke := true; Coro.Exit)) in
  ignore (Engine.at engine (Time.us 10) (fun () -> runner.wakeup h));
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "percpu runner woke" true !woke;
  check Alcotest.int "wakeup recorded" 1 (Histogram.count (runner.wakeup_hist ()))

(* ---- Schbench ---- *)

let test_schbench_on_percpu () =
  let engine, _, rt = make_percpu ~cores:2 (Skyloft_policies.Rr.create ~slice:(Time.us 50) ()) in
  let app = Percpu.create_app rt ~name:"sb" in
  let runner = Runner.of_percpu rt app in
  let config =
    { Schbench.message_threads = 1; workers = 4; request = Time.us 100;
      message_work = Time.us 1 }
  in
  let h = Schbench.run runner engine config ~duration:(Time.ms 20) in
  (* 2 cores, 100us requests, 20ms: ~400 requests, each preceded by a wake *)
  check Alcotest.bool "many wakeups recorded" true (Histogram.count h > 100);
  check Alcotest.bool "wakeups are small on this tiny setup" true
    (Histogram.percentile h 50.0 < Time.ms 1)

let test_schbench_on_linux () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let linux = Linux.create machine Linux.cfs_default ~cores:[ 0; 1 ] in
  let runner = Runner.of_linux linux in
  let config =
    { Schbench.message_threads = 1; workers = 4; request = Time.us 100;
      message_work = Time.us 1 }
  in
  let h = Schbench.run runner engine config ~duration:(Time.ms 20) in
  check Alcotest.bool "linux wakeups recorded" true (Histogram.count h > 50)

let test_schbench_oversubscribed_latency_higher () =
  (* More workers than cores must raise the p99 wakeup latency. *)
  let run workers =
    let engine, _, rt =
      make_percpu ~cores:2 (Skyloft_policies.Rr.create ~slice:(Time.us 50) ())
    in
    let app = Percpu.create_app rt ~name:"sb" in
    let runner = Runner.of_percpu rt app in
    let config =
      { Schbench.message_threads = 1; workers; request = Time.us 500;
        message_work = Time.us 1 }
    in
    let h = Schbench.run runner engine config ~duration:(Time.ms 40) in
    Histogram.percentile h 99.0
  in
  let low = run 2 and high = run 8 in
  check Alcotest.bool "oversubscription raises p99" true (high > low)

let test_schbench_invalid_config () =
  let engine, _, rt = make_percpu (Skyloft_policies.Fifo.create ()) in
  let app = Percpu.create_app rt ~name:"sb" in
  let runner = Runner.of_percpu rt app in
  check Alcotest.bool "zero workers rejected" true
    (try
       ignore
         (Schbench.run runner engine
            { Schbench.message_threads = 1; workers = 0; request = 1; message_work = 1 }
            ~duration:(Time.ms 1));
       false
     with Invalid_argument _ -> true)

(* ---- UDP server over the NIC ---- *)

let test_udp_server_end_to_end () =
  let engine, _, rt = make_percpu ~cores:2 (Skyloft_policies.Work_stealing.create ()) in
  let app = Percpu.create_app rt ~name:"kv" in
  let nic = Nic.create engine ~queues:2 () in
  Udp_server.attach rt app nic ~cores:[ 0; 1 ];
  let rng = Rng.create ~seed:9 in
  Loadgen.poisson engine ~rng ~rate_rps:50_000.0 ~service:(Dist.Constant (Time.us 5))
    ~duration:(Time.ms 20) (fun pkt -> Nic.rx nic pkt);
  Engine.run ~until:(Time.ms 30) engine;
  check Alcotest.bool "served ~1000 requests" true (Summary.requests app.App.summary > 800);
  check Alcotest.int "nothing dropped" 0 (Nic.drops nic);
  (* latency includes poll cost + queueing: at 25% load it stays tiny *)
  check Alcotest.bool "p99 small at low load" true
    (Summary.latency_p app.App.summary 99.0 < Time.us 50)

let test_udp_server_queue_mismatch () =
  let _, _, rt = make_percpu ~cores:2 (Skyloft_policies.Work_stealing.create ()) in
  let app = Percpu.create_app rt ~name:"kv" in
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:3 () in
  check Alcotest.bool "queue/core mismatch rejected" true
    (try
       Udp_server.attach rt app nic ~cores:[ 0; 1 ];
       false
     with Invalid_argument _ -> true)

(* ---- workload definitions ---- *)

let test_memcached_mix () =
  let rng = Rng.create ~seed:4 in
  let gets = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Memcached.kind rng = "get" then incr gets
  done;
  let frac = float_of_int !gets /. float_of_int n in
  check Alcotest.bool "USR: ~99.8% GETs" true (frac > 0.99);
  check Alcotest.bool "saturation sensible" true
    (Memcached.saturation_rps ~cores:4 > 500_000.)

let test_rocksdb_mix () =
  let rng = Rng.create ~seed:4 in
  let gets = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Rocksdb.kind rng = "get" then incr gets
  done;
  let frac = float_of_int !gets /. float_of_int n in
  check Alcotest.bool "bimodal: ~50% GETs" true (frac > 0.45 && frac < 0.55);
  (* paper's mean: (0.95us + 591us)/2 *)
  check Alcotest.bool "mean service ~296us" true
    (abs_float (Rocksdb.mean_service_ns -. 295_975.) < 100.)

let test_batch_soaks_idle_cores () =
  let engine, _, rt = make_percpu ~cores:2 (Skyloft_policies.Fifo.create ()) in
  let app = Percpu.create_app rt ~name:"batch" in
  Batch.spawn_workers rt app ~workers:2 ~chunk:(Time.us 100);
  Engine.run ~until:(Time.ms 10) engine;
  let share = App.cpu_share app ~total_ns:(2 * Time.ms 10) in
  check Alcotest.bool "batch uses nearly all idle CPU" true (share > 0.9)

let suite =
  [
    Alcotest.test_case "runner: linux" `Quick test_runner_of_linux;
    Alcotest.test_case "runner: percpu" `Quick test_runner_of_percpu;
    Alcotest.test_case "schbench: percpu" `Quick test_schbench_on_percpu;
    Alcotest.test_case "schbench: linux" `Quick test_schbench_on_linux;
    Alcotest.test_case "schbench: oversubscription" `Quick
      test_schbench_oversubscribed_latency_higher;
    Alcotest.test_case "schbench: invalid config" `Quick test_schbench_invalid_config;
    Alcotest.test_case "udp server: end to end" `Quick test_udp_server_end_to_end;
    Alcotest.test_case "udp server: mismatch" `Quick test_udp_server_queue_mismatch;
    Alcotest.test_case "memcached: USR mix" `Quick test_memcached_mix;
    Alcotest.test_case "rocksdb: bimodal mix" `Quick test_rocksdb_mix;
    Alcotest.test_case "batch: soaks idle" `Quick test_batch_soaks_idle_cores;
  ]
