(* Tests for the baseline system models: Linux-CFS pool server, Shenango,
   ghOSt, original Shinjuku. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Dist = Skyloft_sim.Dist
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module App = Skyloft.App
module Centralized = Skyloft.Centralized
module Percpu = Skyloft.Percpu
module Linux_workload = Skyloft_baselines.Linux_workload
module Shenango = Skyloft_baselines.Shenango
module Ghost = Skyloft_baselines.Ghost
module Shinjuku_orig = Skyloft_baselines.Shinjuku_orig

let check = Alcotest.check

let test_linux_workload_serves () =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let rng = Engine.split_rng engine in
  let t =
    Linux_workload.run machine ~cores:[ 0; 1; 2; 3 ] ~rng ~rate_rps:50_000.0
      ~service:(Dist.Constant (Time.us 20)) ~duration:(Time.ms 50) ()
  in
  (* 50 krps x 50ms = ~2500 requests at 25% load: all served *)
  check Alcotest.bool "served most requests" true
    (Linux_workload.served t > (Linux_workload.offered t * 9 / 10));
  check Alcotest.bool "latency sane" true
    (Summary.latency_p (Linux_workload.summary t) 50.0 < Time.ms 1)

let test_linux_workload_batch_share () =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let rng = Engine.split_rng engine in
  let t =
    Linux_workload.run machine ~cores:[ 0; 1; 2; 3 ] ~rng ~rate_rps:10_000.0
      ~service:(Dist.Constant (Time.us 20)) ~duration:(Time.ms 50) ~batch_threads:4 ()
  in
  (* 5% LC load: batch should soak most of the 4 cores *)
  let share =
    float_of_int (Linux_workload.batch_busy_ns t) /. float_of_int (4 * Time.ms 50)
  in
  check Alcotest.bool "batch soaks idle CPU under CFS" true (share > 0.5)

let test_shenango_parks_and_resumes () =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt = Shenango.make machine kmod ~cores:[ 0; 1 ] in
  let app = Percpu.create_app rt ~name:"a" in
  let first_done = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"t1"
       (Coro.Compute (Time.us 10, fun () -> first_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 1) engine;
  (* after >5us idle the cores park; the next task pays the resume cost *)
  let second_done = ref 0 in
  ignore
    (Engine.at engine (Time.ms 1) (fun () ->
         ignore
           (Percpu.spawn rt app ~name:"t2"
              (Coro.Compute
                 (Time.us 10, fun () -> second_done := Engine.now engine; Coro.Exit)))));
  Engine.run ~until:(Time.ms 2) engine;
  let first_latency = !first_done and second_latency = !second_done - Time.ms 1 in
  (* The first dispatch pays the one-off application switch (1,905 ns); the
     second pays the unpark cost (~3.5 us), which must dominate. *)
  check Alcotest.bool "parked resume is slower" true
    (second_latency > first_latency + Time.us 1)

let test_shenango_no_preemption () =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt = Shenango.make machine kmod ~cores:[ 0 ] in
  let app = Percpu.create_app rt ~name:"a" in
  ignore (Percpu.spawn rt app ~name:"scan" (Coro.compute_then_exit (Time.us 591)));
  ignore (Percpu.spawn rt app ~name:"get" (Coro.compute_then_exit (Time.ns 950)));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.int "no preemptions ever" 0 (Percpu.preemptions rt)

let test_ghost_slower_than_skyloft () =
  (* Same workload through both mechanisms: ghOSt's dispatcher and switch
     costs must show up as higher tail latency. *)
  let run mechanism =
    let engine = Engine.create ~seed:1 () in
    let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
    let kmod = Kmod.create machine in
    let rt =
      Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2 ]
        ~quantum:(Time.us 30) ~mechanism
        (Skyloft_policies.Shinjuku.create ())
    in
    let app = Centralized.create_app rt ~name:"lc" in
    for _ = 1 to 200 do
      ignore
        (Centralized.submit rt app ~name:"r" ~service:(Time.us 10)
           (Coro.compute_then_exit (Time.us 10)))
    done;
    Engine.run ~until:(Time.ms 10) engine;
    Summary.latency_p app.App.summary 99.0
  in
  let sky = run Centralized.skyloft_mechanism in
  let ghost = run Centralized.ghost_mechanism in
  check Alcotest.bool "ghOSt p99 > Skyloft p99" true (ghost > sky)

let test_shinjuku_orig_single_app () =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Shinjuku_orig.make machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2 ]
      ~quantum:(Time.us 30)
      (Skyloft_policies.Shinjuku.create ())
  in
  let app = Centralized.create_app rt ~name:"lc" in
  let done_ = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Centralized.submit rt app ~name:"r" ~service:(Time.us 10)
         (Coro.Compute (Time.us 10, fun () -> incr done_; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.int "requests served" 10 !done_

let suite =
  [
    Alcotest.test_case "linux workload: serves" `Quick test_linux_workload_serves;
    Alcotest.test_case "linux workload: batch share" `Quick test_linux_workload_batch_share;
    Alcotest.test_case "shenango: park/resume cost" `Quick test_shenango_parks_and_resumes;
    Alcotest.test_case "shenango: never preempts" `Quick test_shenango_no_preemption;
    Alcotest.test_case "ghost: costlier than skyloft" `Quick test_ghost_slower_than_skyloft;
    Alcotest.test_case "shinjuku orig: single app" `Quick test_shinjuku_orig_single_app;
  ]
